"""Bipartite graphs between domains and hosts / IPs / time windows.

All three graph builders aggregate hostnames to e2LDs (pruning rule 3 of
the paper is applied at construction time, since every later stage works
at e2LD granularity) and skip syntactically invalid or bare-suffix names.

The graphs store domain adjacency as sets and can export a scipy CSR
incidence matrix for the projection step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np
from scipy import sparse

from repro.dns.dhcp import HostIdentityResolver
from repro.dns.names import is_valid_domain_name
from repro.dns.psl import PublicSuffixList, default_psl
from repro.dns.types import DnsQuery, DnsResponse
from repro.errors import DomainNameError, GraphConstructionError

DEFAULT_TIME_WINDOW_SECONDS = 60.0  # the paper's one-minute windows


@dataclass(slots=True)
class BipartiteGraph:
    """A domain-vs-X bipartite graph stored as per-domain neighbor sets.

    Attributes:
        kind: ``"host"``, ``"ip"``, or ``"time"`` — which right-hand
            vertex set this graph uses.
        adjacency: domain e2LD -> set of right-hand vertex identifiers.
    """

    kind: str
    adjacency: dict[str, set[object]] = field(default_factory=dict)

    def add_edge(self, domain: str, right_vertex: object) -> None:
        self.adjacency.setdefault(domain, set()).add(right_vertex)

    @property
    def domains(self) -> list[str]:
        return list(self.adjacency)

    @property
    def domain_count(self) -> int:
        return len(self.adjacency)

    @property
    def right_vertices(self) -> set[object]:
        merged: set[object] = set()
        for neighbors in self.adjacency.values():
            merged |= neighbors
        return merged

    @property
    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency.values())

    def degree(self, domain: str) -> int:
        return len(self.adjacency.get(domain, ()))

    def neighbors(self, domain: str) -> set[object]:
        return set(self.adjacency.get(domain, set()))

    def restrict_to(self, domains: Iterable[str]) -> "BipartiteGraph":
        """A copy containing only the given domains."""
        keep = set(domains)
        return BipartiteGraph(
            kind=self.kind,
            adjacency={
                domain: set(neighbors)
                for domain, neighbors in self.adjacency.items()
                if domain in keep
            },
        )

    def incidence_matrix(
        self, domain_order: list[str] | None = None
    ) -> tuple[sparse.csr_matrix, list[str], list[object]]:
        """Binary CSR incidence matrix (domains x right vertices).

        Returns (matrix, domain_order, right_vertex_order). Domains absent
        from the graph produce all-zero rows when ``domain_order`` is
        supplied explicitly.
        """
        if domain_order is None:
            domain_order = sorted(self.adjacency)
        right_order = sorted(self.right_vertices, key=repr)
        right_index = {vertex: i for i, vertex in enumerate(right_order)}
        rows: list[int] = []
        cols: list[int] = []
        for row, domain in enumerate(domain_order):
            for vertex in self.adjacency.get(domain, ()):
                rows.append(row)
                cols.append(right_index[vertex])
        matrix = sparse.csr_matrix(
            (np.ones(len(rows), dtype=np.float64), (rows, cols)),
            shape=(len(domain_order), len(right_order)),
        )
        return matrix, list(domain_order), right_order


def _e2ld_or_none(qname: str, psl: PublicSuffixList) -> str | None:
    """e2LD of a query name, or None when it cannot be aggregated."""
    if not is_valid_domain_name(qname):
        return None
    try:
        return psl.registered_domain(qname)
    except DomainNameError:
        return None


def build_host_domain_graph(
    queries: Iterable[DnsQuery],
    identity: HostIdentityResolver | None = None,
    psl: PublicSuffixList | None = None,
) -> BipartiteGraph:
    """Host-domain interaction graph HDBG (paper section 4.1.1).

    An edge (h, d) exists when host h issued at least one query for a name
    in domain d. When a DHCP ``identity`` resolver is supplied, hosts are
    identified by MAC address (stable under IP churn); otherwise by source
    IP.
    """
    if psl is None:
        psl = default_psl()
    graph = BipartiteGraph(kind="host")
    cache: dict[str, str | None] = {}
    for query in queries:
        e2ld = cache.get(query.qname, "")
        if e2ld == "":
            e2ld = _e2ld_or_none(query.qname, psl)
            cache[query.qname] = e2ld
        if e2ld is None:
            continue
        if identity is not None:
            host = identity.resolve_or_ip(query.source_ip, query.timestamp)
        else:
            host = query.source_ip
        graph.add_edge(e2ld, host)
    return graph


def build_domain_ip_graph(
    responses: Iterable[DnsResponse],
    psl: PublicSuffixList | None = None,
) -> BipartiteGraph:
    """Domain-IP mapping graph DIBG (paper section 4.1.2).

    An edge (d, ip) exists when some hostname of domain d resolved to ip.
    NXDOMAIN responses contribute nothing.
    """
    if psl is None:
        psl = default_psl()
    graph = BipartiteGraph(kind="ip")
    cache: dict[str, str | None] = {}
    for response in responses:
        if response.nxdomain:
            continue
        e2ld = cache.get(response.qname, "")
        if e2ld == "":
            e2ld = _e2ld_or_none(response.qname, psl)
            cache[response.qname] = e2ld
        if e2ld is None:
            continue
        for ip in response.resolved_ips:
            graph.add_edge(e2ld, ip)
    return graph


def build_domain_time_graph(
    queries: Iterable[DnsQuery],
    window_seconds: float = DEFAULT_TIME_WINDOW_SECONDS,
    psl: PublicSuffixList | None = None,
) -> BipartiteGraph:
    """Domain-time association graph DTBG (paper section 4.1.3).

    An edge (d, t) exists when domain d was queried at least once during
    time window t. The paper's window is one minute.
    """
    if window_seconds <= 0:
        raise GraphConstructionError("window_seconds must be positive")
    if psl is None:
        psl = default_psl()
    graph = BipartiteGraph(kind="time")
    cache: dict[str, str | None] = {}
    for query in queries:
        e2ld = cache.get(query.qname, "")
        if e2ld == "":
            e2ld = _e2ld_or_none(query.qname, psl)
            cache[query.qname] = e2ld
        if e2ld is None:
            continue
        graph.add_edge(e2ld, int(query.timestamp // window_seconds))
    return graph
