"""Bipartite graphs between domains and hosts / IPs / time windows.

All three graph builders aggregate hostnames to e2LDs (pruning rule 3 of
the paper is applied at construction time, since every later stage works
at e2LD granularity) and skip syntactically invalid or bare-suffix names.

Graphs are stored columnar: a :class:`~repro.graphs.core.VertexTable`
interner per vertex side plus an array-backed
:class:`~repro.graphs.core.EdgeList` of ``(domain_id, right_id)`` pairs.
The old ``dict[str, set]`` surface survives as a read-only view
(:attr:`BipartiteGraph.adjacency`), so callers keep working while
pruning, projection, and persistence operate on the id arrays directly.
"""

from __future__ import annotations

import weakref
from collections.abc import Mapping
from typing import Hashable, Iterable, Iterator

import numpy as np
from scipy import sparse

from repro.dns.dhcp import HostIdentityResolver
from repro.dns.names import is_valid_domain_name
from repro.dns.psl import PublicSuffixList, default_psl
from repro.dns.types import DnsQuery, DnsResponse, QueryType
from repro.errors import DomainNameError, GraphConstructionError
from repro.graphs.core import EdgeList, VertexTable

DEFAULT_TIME_WINDOW_SECONDS = 60.0  # the paper's one-minute windows

#: Cache sentinel for "qname seen, not aggregatable" (ids are >= 0).
_NO_DOMAIN = -1
#: Answer records that carry a resolved address.
_ADDRESS_RTYPES = (QueryType.A, QueryType.AAAA)


class AdjacencyView(Mapping):
    """Read-only ``domain -> set(right vertices)`` view over the columns.

    Materializes neighbor sets on access; iteration order is the
    domains' first-edge order, matching the old dict's insertion order.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "BipartiteGraph") -> None:
        self._graph = graph

    def __getitem__(self, domain: str) -> set[Hashable]:
        graph = self._graph
        vid = graph.left.id_of(domain)
        if vid is None:
            raise KeyError(domain)
        ids = graph.edges.neighbors_of_left(vid)
        if ids.size == 0:
            raise KeyError(domain)
        value_of = graph.right.value_of
        return {value_of(int(i)) for i in ids}

    def __contains__(self, domain: object) -> bool:
        graph = self._graph
        vid = graph.left.id_of(domain)  # type: ignore[arg-type]
        return vid is not None and graph.edges.degree_of_left(vid) > 0

    def __iter__(self) -> Iterator[str]:
        graph = self._graph
        value_of = graph.left.value_of
        return (str(value_of(i)) for i in graph.edges.left_ids_ordered())

    def __len__(self) -> int:
        return self._graph.edges.left_count()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AdjacencyView):
            other = dict(other.items())
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(dict(self.items()))


class BipartiteGraph:
    """A domain-vs-X bipartite graph over an interned columnar store.

    Attributes:
        kind: ``"host"``, ``"ip"``, or ``"time"`` — which right-hand
            vertex set this graph uses.
        left: Interner for the domain (left) vertex set. Multiple graphs
            may share one table so their domain ids agree.
        right: Interner for the right-hand vertex set.
        edges: The columnar ``(domain_id, right_id)`` edge store.
    """

    __slots__ = ("kind", "left", "right", "edges")

    def __init__(
        self,
        kind: str,
        adjacency: Mapping | None = None,
        *,
        left: VertexTable | None = None,
        right: VertexTable | None = None,
        edges: EdgeList | None = None,
    ) -> None:
        self.kind = kind
        self.left = left if left is not None else VertexTable()
        self.right = right if right is not None else VertexTable()
        self.edges = edges if edges is not None else EdgeList()
        if adjacency:
            for domain, neighbors in adjacency.items():
                for vertex in neighbors:
                    self.add_edge(domain, vertex)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(kind={self.kind!r}, "
            f"domains={self.domain_count}, edges={self.edge_count})"
        )

    def add_edge(self, domain: str, right_vertex: Hashable) -> None:
        self.edges.add(self.left.intern(domain), self.right.intern(right_vertex))

    @property
    def adjacency(self) -> AdjacencyView:
        """The legacy ``dict[str, set]``-shaped read-only view."""
        return AdjacencyView(self)

    @property
    def domains(self) -> list[str]:
        value_of = self.left.value_of
        return [str(value_of(i)) for i in self.edges.left_ids_ordered()]

    @property
    def domain_count(self) -> int:
        return self.edges.left_count()

    @property
    def right_vertices(self) -> set[Hashable]:
        value_of = self.right.value_of
        return {value_of(int(i)) for i in self.edges.right_ids_used()}

    @property
    def edge_count(self) -> int:
        return self.edges.edge_count

    def degree(self, domain: str) -> int:
        vid = self.left.id_of(domain)
        return 0 if vid is None else self.edges.degree_of_left(vid)

    def neighbors(self, domain: str) -> set[Hashable]:
        vid = self.left.id_of(domain)
        if vid is None:
            return set()
        value_of = self.right.value_of
        return {value_of(int(i)) for i in self.edges.neighbors_of_left(vid)}

    def restrict_to(self, domains: Iterable[str]) -> "BipartiteGraph":
        """A copy containing only the given domains.

        A vectorized mask over the left-id column; the vertex tables are
        shared with the original (they are append-only, so ids stay
        valid), only the edge arrays are filtered.
        """
        keep = np.zeros(max(len(self.left), 1), dtype=bool)
        for domain in domains:
            vid = self.left.id_of(domain)
            if vid is not None:
                keep[vid] = True
        lefts, rights = self.edges.columns()
        mask = keep[lefts]
        edges = EdgeList._from_trusted(lefts[mask], rights[mask])
        return BipartiteGraph(
            kind=self.kind, left=self.left, right=self.right, edges=edges
        )

    def incidence_matrix(
        self, domain_order: list[str] | None = None
    ) -> tuple[sparse.csr_matrix, list[str], list[Hashable]]:
        """Binary CSR incidence matrix (domains x right vertices).

        Returns (matrix, domain_order, right_vertex_order). Domains absent
        from the graph produce all-zero rows when ``domain_order`` is
        supplied explicitly. Right vertices follow the interner's typed
        deterministic order (numbers numerically, then strings
        lexicographically) — stable across rebuilds, unlike the old
        ``sorted(key=repr)`` which interleaved mixed int/str keys by
        their repr text.
        """
        lefts, rights = self.edges.columns()
        if domain_order is None:
            domain_order = sorted(self.domains)
        right_order = self.right.typed_order(self.edges.right_ids_used())
        col_of = np.full(max(len(self.right), 1), -1, dtype=np.int64)
        for col, vertex in enumerate(right_order):
            col_of[self.right.id_of(vertex)] = col
        row_of = np.full(max(len(self.left), 1), -1, dtype=np.int64)
        for row, domain in enumerate(domain_order):
            vid = self.left.id_of(domain)
            if vid is not None:
                row_of[vid] = row
        rows = row_of[lefts]
        cols = col_of[rights]
        mask = rows >= 0
        matrix = sparse.csr_matrix(
            (
                np.ones(int(mask.sum()), dtype=np.float64),
                (rows[mask], cols[mask]),
            ),
            shape=(len(domain_order), len(right_order)),
        )
        return matrix, list(domain_order), right_order

    def _incidence_csr(
        self, domain_order: list[str] | None = None
    ) -> tuple[sparse.csr_matrix, list[str]]:
        """Incidence matrix with *arbitrary* column order (projection path).

        One-mode projection sums the right side out, so columns need no
        deterministic ordering — right ids compress to columns via one
        ``searchsorted``, skipping the typed sort that
        :meth:`incidence_matrix` pays for its public contract.
        """
        lefts, rights = self.edges.columns()
        used = self.edges.right_ids_used()
        cols = np.searchsorted(used, rights)
        row_of = np.full(max(len(self.left), 1), -1, dtype=np.int64)
        if domain_order is None:
            ids = np.asarray(self.edges.left_ids_ordered(), dtype=np.int64)
            values = np.asarray(self.domains)
            order = np.argsort(values, kind="stable")
            row_of[ids[order]] = np.arange(ids.size)
            domain_order = values[order].tolist()
        else:
            id_of = self.left.id_of
            for row, domain in enumerate(domain_order):
                vid = id_of(domain)
                if vid is not None:
                    row_of[vid] = row
        rows = row_of[lefts]
        mask = rows >= 0
        matrix = sparse.csr_matrix(
            (
                np.ones(int(mask.sum()), dtype=np.float64),
                (rows[mask], cols[mask]),
            ),
            shape=(len(domain_order), int(used.size)),
        )
        return matrix, list(domain_order)


def _e2ld_or_none(qname: str, psl: PublicSuffixList) -> str | None:
    """e2LD of a query name, or None when it cannot be aggregated."""
    if not is_valid_domain_name(qname):
        return None
    try:
        return psl.registered_domain(qname)
    except DomainNameError:
        return None


#: Per-domain-table qname -> domain-id caches. Keyed weakly by the
#: VertexTable so that the PSL walk for a given query name runs once per
#: *table*, not once per builder — the pipeline threads one shared table
#: through all three views, making HDBG/DTBG/DIBG share aggregation work.
_QNAME_CACHES: "weakref.WeakKeyDictionary[VertexTable, tuple[PublicSuffixList, dict[str, int]]]" = (
    weakref.WeakKeyDictionary()
)


def _qname_cache_for(
    domains: VertexTable, psl: PublicSuffixList
) -> dict[str, int]:
    entry = _QNAME_CACHES.get(domains)
    if entry is None or entry[0] is not psl:
        cache: dict[str, int] = {}
        _QNAME_CACHES[domains] = (psl, cache)
        return cache
    return entry[1]


def _intern_qnames(
    qnames: list[str], psl: PublicSuffixList, domains: VertexTable
) -> np.ndarray:
    """Domain id per query name (``_NO_DOMAIN`` where not aggregatable).

    Dict-factorized: the PSL walk and interning run once per *unique*
    name (first occurrence); repeats cost one dict probe inside a
    ``np.fromiter`` generator, which beats both a full Python loop body
    and string-sorting ``np.unique`` at every trace size we benchmark.
    """
    cache = _qname_cache_for(domains, psl)
    get = cache.get
    intern_domain = domains.intern

    def miss(name: str) -> int:
        e2ld = _e2ld_or_none(name, psl)
        did = cache[name] = (
            _NO_DOMAIN if e2ld is None else intern_domain(e2ld)
        )
        return did

    return np.fromiter(
        (
            did if (did := get(name)) is not None else miss(name)
            for name in qnames
        ),
        dtype=np.int64,
        count=len(qnames),
    )


def _intern_column(values: list, table: VertexTable) -> np.ndarray:
    """Intern a per-record value column, one table hit per unique value."""
    cache: dict[Hashable, int] = {}
    get = cache.get
    intern = table.intern

    def miss(value: Hashable) -> int:
        vid = cache[value] = intern(value)
        return vid

    return np.fromiter(
        (
            vid if (vid := get(value)) is not None else miss(value)
            for value in values
        ),
        dtype=np.int64,
        count=len(values),
    )


def _accumulate_query_graphs(
    queries: Iterable[DnsQuery],
    identity: HostIdentityResolver | None,
    window_seconds: float,
    psl: PublicSuffixList,
    domains: VertexTable,
    want_host: bool,
    want_time: bool,
) -> tuple[BipartiteGraph, BipartiteGraph]:
    """Columnar build of the host and/or time graphs from ``queries``.

    Instead of a per-record Python loop, each field is pulled into a
    column, qnames/hosts/windows are factorized with ``np.unique`` (so
    PSL aggregation and interning run once per distinct value), and the
    edge arrays land in one bulk extend + vectorized dedup per graph.
    Record order is preserved, so first-occurrence semantics (and hence
    ``graph.domains`` ordering) match the incremental path.
    """
    if not isinstance(queries, list):
        queries = list(queries)
    host_graph = BipartiteGraph(kind="host", left=domains)
    time_graph = BipartiteGraph(kind="time", left=domains)
    dids = _intern_qnames([q.qname for q in queries], psl, domains)
    valid = dids >= 0
    if want_host:
        if identity is not None:
            resolve = identity.resolve_or_ip
            hosts: list[Hashable] = [
                resolve(q.source_ip, q.timestamp) for q in queries
            ]
        else:
            hosts = [q.source_ip for q in queries]
        hids = _intern_column(hosts, host_graph.right)
        host_graph.edges.extend_raw(dids[valid], hids[valid])
        host_graph.edges.compact()
    if want_time:
        stamps = np.fromiter(
            (q.timestamp for q in queries), dtype=np.float64,
            count=len(queries),
        )
        windows = np.floor_divide(stamps, window_seconds).astype(np.int64)
        intern_window = time_graph.right.intern
        unique, inverse = np.unique(windows, return_inverse=True)
        per_unique = np.fromiter(
            (intern_window(int(w)) for w in unique),
            dtype=np.int64,
            count=unique.size,
        )
        wids = per_unique[inverse]
        time_graph.edges.extend_raw(dids[valid], wids[valid])
        time_graph.edges.compact()
    return host_graph, time_graph


def build_query_graphs(
    queries: Iterable[DnsQuery],
    identity: HostIdentityResolver | None = None,
    window_seconds: float = DEFAULT_TIME_WINDOW_SECONDS,
    psl: PublicSuffixList | None = None,
    *,
    domains: VertexTable | None = None,
) -> tuple[BipartiteGraph, BipartiteGraph]:
    """Build HDBG and DTBG together in a single pass over the queries.

    Both graphs share the qname aggregation cache and (optionally) one
    ``domains`` interner, halving the per-record work compared to
    calling the two single-graph builders separately.
    """
    if window_seconds <= 0:
        raise GraphConstructionError("window_seconds must be positive")
    if psl is None:
        psl = default_psl()
    if domains is None:
        domains = VertexTable()
    return _accumulate_query_graphs(
        queries, identity, window_seconds, psl, domains,
        want_host=True, want_time=True,
    )


def build_host_domain_graph(
    queries: Iterable[DnsQuery],
    identity: HostIdentityResolver | None = None,
    psl: PublicSuffixList | None = None,
    *,
    domains: VertexTable | None = None,
) -> BipartiteGraph:
    """Host-domain interaction graph HDBG (paper section 4.1.1).

    An edge (h, d) exists when host h issued at least one query for a name
    in domain d. When a DHCP ``identity`` resolver is supplied, hosts are
    identified by MAC address (stable under IP churn); otherwise by source
    IP.
    """
    if psl is None:
        psl = default_psl()
    if domains is None:
        domains = VertexTable()
    host_graph, __ = _accumulate_query_graphs(
        queries, identity, DEFAULT_TIME_WINDOW_SECONDS, psl, domains,
        want_host=True, want_time=False,
    )
    return host_graph


def build_domain_ip_graph(
    responses: Iterable[DnsResponse],
    psl: PublicSuffixList | None = None,
    *,
    domains: VertexTable | None = None,
) -> BipartiteGraph:
    """Domain-IP mapping graph DIBG (paper section 4.1.2).

    An edge (d, ip) exists when some hostname of domain d resolved to ip.
    NXDOMAIN responses contribute nothing.
    """
    if psl is None:
        psl = default_psl()
    if domains is None:
        domains = VertexTable()
    graph = BipartiteGraph(kind="ip", left=domains)
    qnames: list[str] = []
    ips: list[str] = []
    append_qname = qnames.append
    append_ip = ips.append
    for response in responses:
        if response.nxdomain:
            continue
        name = response.qname
        for rr in response.answers:
            if rr.rtype in _ADDRESS_RTYPES:
                append_qname(name)
                append_ip(rr.value)
    dids = _intern_qnames(qnames, psl, domains)
    iids = _intern_column(ips, graph.right)
    valid = dids >= 0
    graph.edges.extend_raw(dids[valid], iids[valid])
    graph.edges.compact()
    return graph


def fold_records_into_graphs(
    records: Iterable[DnsQuery | DnsResponse],
    host_graph: BipartiteGraph,
    domain_ip: BipartiteGraph,
    domain_time: BipartiteGraph,
    identity: HostIdentityResolver | None = None,
    window_seconds: float = DEFAULT_TIME_WINDOW_SECONDS,
    psl: PublicSuffixList | None = None,
) -> int:
    """Fold one mixed record batch into three existing bipartite graphs.

    The chunked-ingestion fast path: instead of materializing a whole
    trace, callers hand bounded batches of interleaved queries and
    responses and the edges land through the same vectorized
    ``_intern_qnames`` / ``extend_raw`` route the monolithic builders
    use. Deduplication is deferred — edges accumulate raw and the next
    structural query (or an explicit ``compact()``) folds them, so a
    million-record batch pays one bulk append per graph, not a hash
    probe per record.

    All three graphs must share one left (domain) :class:`VertexTable`,
    mirroring how the pipeline threads a single domain interner through
    all views. Returns the number of records consumed.
    """
    if window_seconds <= 0:
        raise GraphConstructionError("window_seconds must be positive")
    if (
        host_graph.left is not domain_ip.left
        or host_graph.left is not domain_time.left
    ):
        raise GraphConstructionError(
            "fold_records_into_graphs needs graphs sharing one domain table"
        )
    if psl is None:
        psl = default_psl()
    domains = host_graph.left

    query_qnames: list[str] = []
    query_sources: list[str] = []
    query_stamps: list[float] = []
    answer_qnames: list[str] = []
    answer_ips: list[str] = []
    count = 0
    for record in records:
        count += 1
        if isinstance(record, DnsQuery):
            query_qnames.append(record.qname)
            query_sources.append(record.source_ip)
            query_stamps.append(record.timestamp)
        elif isinstance(record, DnsResponse) and not record.nxdomain:
            name = record.qname
            for rr in record.answers:
                if rr.rtype in _ADDRESS_RTYPES:
                    answer_qnames.append(name)
                    answer_ips.append(rr.value)

    if query_qnames:
        dids = _intern_qnames(query_qnames, psl, domains)
        valid = dids >= 0
        if identity is not None:
            resolve = identity.resolve_or_ip
            hosts: list[Hashable] = [
                resolve(source, stamp)
                for source, stamp in zip(query_sources, query_stamps)
            ]
        else:
            hosts = list(query_sources)
        hids = _intern_column(hosts, host_graph.right)
        host_graph.edges.extend_raw(dids[valid], hids[valid])
        stamps = np.asarray(query_stamps, dtype=np.float64)
        windows = np.floor_divide(stamps, window_seconds).astype(np.int64)
        intern_window = domain_time.right.intern
        unique, inverse = np.unique(windows, return_inverse=True)
        per_unique = np.fromiter(
            (intern_window(int(w)) for w in unique),
            dtype=np.int64,
            count=unique.size,
        )
        wids = per_unique[inverse]
        domain_time.edges.extend_raw(dids[valid], wids[valid])

    if answer_qnames:
        response_dids = _intern_qnames(answer_qnames, psl, domains)
        iids = _intern_column(answer_ips, domain_ip.right)
        valid = response_dids >= 0
        domain_ip.edges.extend_raw(response_dids[valid], iids[valid])
    return count


def build_domain_time_graph(
    queries: Iterable[DnsQuery],
    window_seconds: float = DEFAULT_TIME_WINDOW_SECONDS,
    psl: PublicSuffixList | None = None,
    *,
    domains: VertexTable | None = None,
) -> BipartiteGraph:
    """Domain-time association graph DTBG (paper section 4.1.3).

    An edge (d, t) exists when domain d was queried at least once during
    time window t. The paper's window is one minute.
    """
    if window_seconds <= 0:
        raise GraphConstructionError("window_seconds must be positive")
    if psl is None:
        psl = default_psl()
    if domains is None:
        domains = VertexTable()
    __, time_graph = _accumulate_query_graphs(
        queries, None, window_seconds, psl, domains,
        want_host=False, want_time=True,
    )
    return time_graph
