"""Host-side one-mode projection (paper Figure 3(c)).

Projecting the host-domain bipartite graph onto the *host* vertex set
"captures the shared domain interests for different end hosts"
(section 4.2). Its security use: hosts compromised by the same malware
query the same malware-control domains, so infected machines form tight
host-similarity cliques — the host-level dual of the paper's
domain-level detection (and the construction behind DBOD, reference
[25]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.core import EdgeList
from repro.graphs.projection import SimilarityGraph, project_to_similarity


def transpose_bipartite(graph: BipartiteGraph, kind: str = "domain") -> BipartiteGraph:
    """Swap the vertex sets: host -> set(domains) adjacency.

    A column swap on the edge arrays (the vertex tables trade places);
    no per-edge Python loop. The result can be fed to the standard
    one-mode projection, yielding host-host similarity.
    """
    lefts, rights = graph.edges.columns()
    edges = EdgeList()
    edges.extend_raw(rights, lefts)  # hosts play the left role now
    edges.compact()
    return BipartiteGraph(
        kind=kind, left=graph.right, right=graph.left, edges=edges
    )


def project_hosts(
    host_domain: BipartiteGraph,
    min_similarity: float = 1e-9,
) -> SimilarityGraph:
    """Host-host similarity graph: Jaccard over queried-domain sets."""
    return project_to_similarity(
        transpose_bipartite(host_domain), min_similarity=min_similarity
    )


@dataclass(slots=True)
class InfectedHostGroup:
    """A set of hosts sharing suspicious domain interests."""

    hosts: list[str]
    shared_malicious_domains: list[str]
    cohesion: float  # mean pairwise host similarity inside the group

    def __len__(self) -> int:
        return len(self.hosts)


def find_infected_host_groups(
    host_domain: BipartiteGraph,
    flagged_domains: Iterable[str],
    min_hosts: int = 2,
    min_shared_domains: int = 2,
) -> list[InfectedHostGroup]:
    """Group hosts by the flagged domains they jointly query.

    For every flagged domain, the querying hosts are candidates; hosts
    repeatedly co-occurring across ``min_shared_domains`` flagged domains
    form a group. This is the paper's section 7.2.2 observation ("these 8
    compromised hosts are indeed controlled by the same botnet") turned
    into an algorithm.
    """
    flagged = [d for d in flagged_domains if d in host_domain.adjacency]
    if not flagged:
        return []
    # host -> flagged domains it queried.
    host_flagged: dict[object, set[str]] = {}
    for domain in flagged:
        for host in host_domain.adjacency[domain]:
            host_flagged.setdefault(host, set()).add(domain)

    # Union-find over hosts sharing >= min_shared_domains flagged domains.
    hosts = [
        h for h, ds in host_flagged.items() if len(ds) >= min_shared_domains
    ]
    parent = {h: h for h in hosts}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for i, host_a in enumerate(hosts):
        domains_a = host_flagged[host_a]
        for host_b in hosts[i + 1 :]:
            if len(domains_a & host_flagged[host_b]) >= min_shared_domains:
                union(host_a, host_b)

    components: dict[object, list] = {}
    for host in hosts:
        components.setdefault(find(host), []).append(host)

    groups: list[InfectedHostGroup] = []
    for members in components.values():
        if len(members) < min_hosts:
            continue
        shared = set.intersection(*(host_flagged[h] for h in members))
        cohesion = _mean_pairwise_jaccard(
            [host_flagged[h] for h in members]
        )
        groups.append(
            InfectedHostGroup(
                hosts=sorted(str(h) for h in members),
                shared_malicious_domains=sorted(shared),
                cohesion=cohesion,
            )
        )
    groups.sort(key=len, reverse=True)
    return groups


def _mean_pairwise_jaccard(sets: Sequence[set]) -> float:
    if len(sets) < 2:
        return 1.0
    total = 0.0
    count = 0
    for i, a in enumerate(sets):
        for b in sets[i + 1 :]:
            total += len(a & b) / len(a | b)
            count += 1
    return total / count
