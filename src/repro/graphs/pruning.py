"""Bipartite-graph pruning (paper section 4.1).

Three rules keep the graphs tractable without hurting detection:

1. drop well-known domains queried by more than half the campus hosts
   (google.com-class services);
2. drop domains queried by only a single host — the paper notes such
   domains are picked up later once more behavioral evidence accumulates;
3. aggregate to e2LDs — applied structurally at graph construction time
   (see :mod:`repro.graphs.bipartite`), so this module only reports it.

Rules 1-2 are evaluated on the host-domain graph and the surviving domain
set is then applied consistently to all three graphs, keeping the three
similarity views aligned over the same vertex set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.core import EdgeList


@dataclass(slots=True)
class PruningRules:
    """Knobs for the pruning pass.

    Attributes:
        popular_host_fraction: Rule 1 threshold — domains queried by more
            than this fraction of observed hosts are dropped (paper: 0.5).
        min_hosts: Rule 2 threshold — domains queried by fewer than this
            many hosts are dropped (paper: 2).
    """

    popular_host_fraction: float = 0.5
    min_hosts: int = 2

    def validate(self) -> None:
        if not 0.0 < self.popular_host_fraction <= 1.0:
            raise ValueError("popular_host_fraction must lie in (0, 1]")
        if self.min_hosts < 1:
            raise ValueError("min_hosts must be at least 1")


@dataclass(slots=True)
class PruningReport:
    """What the pruning pass did, for logging and ablation benches."""

    total_hosts: int
    domains_before: int
    dropped_popular: list[str] = field(default_factory=list)
    dropped_single_host: list[str] = field(default_factory=list)
    surviving_domains: set[str] = field(default_factory=set)

    @property
    def domains_after(self) -> int:
        return len(self.surviving_domains)

    def summary(self) -> str:
        return (
            f"pruning: {self.domains_before} domains -> {self.domains_after} "
            f"(rule1 dropped {len(self.dropped_popular)} popular, "
            f"rule2 dropped {len(self.dropped_single_host)} single-host; "
            f"{self.total_hosts} hosts observed)"
        )


def prune_graphs(
    host_domain: BipartiteGraph,
    domain_ip: BipartiteGraph,
    domain_time: BipartiteGraph,
    rules: PruningRules | None = None,
) -> tuple[BipartiteGraph, BipartiteGraph, BipartiteGraph, PruningReport]:
    """Apply rules 1-2 to HDBG and propagate the domain set to all graphs.

    Returns the three pruned graphs and a :class:`PruningReport`. Domains
    that appear only in the IP or time graph (e.g. responses whose query
    fell outside the window) are also dropped, keeping the vertex sets
    consistent.
    """
    if rules is None:
        rules = PruningRules()
    rules.validate()

    total_hosts = int(host_domain.edges.right_ids_used().size)
    report = PruningReport(
        total_hosts=total_hosts,
        domains_before=host_domain.domain_count,
    )
    popular_cutoff = rules.popular_host_fraction * max(total_hosts, 1)

    # Rules 1-2 as one vectorized pass over the host-degree array.
    degrees = host_domain.edges.left_degrees(max(len(host_domain.left), 1))
    ids = np.asarray(host_domain.edges.left_ids_ordered(), dtype=np.int64)
    deg = degrees[ids] if ids.size else ids
    popular = deg > popular_cutoff
    single = ~popular & (deg < rules.min_hosts)
    surviving = ~popular & ~single
    value_of = host_domain.left.value_of
    report.dropped_popular = [str(value_of(int(i))) for i in ids[popular]]
    report.dropped_single_host = [
        str(value_of(int(i))) for i in ids[single]
    ]
    surviving_ids = ids[surviving]
    report.surviving_domains = {
        str(value_of(int(i))) for i in surviving_ids
    }

    # Keep-mask over domain ids; graphs sharing the host graph's interner
    # are filtered directly on their id columns (no dict copies).
    keep = np.zeros(max(len(host_domain.left), 1), dtype=bool)
    keep[surviving_ids] = True

    def restrict(graph: BipartiteGraph) -> BipartiteGraph:
        if graph.left is not host_domain.left:
            return graph.restrict_to(report.surviving_domains)
        lefts, rights = graph.edges.columns()
        mask = keep[lefts]
        edges = EdgeList._from_trusted(lefts[mask], rights[mask])
        return BipartiteGraph(
            kind=graph.kind, left=graph.left, right=graph.right, edges=edges
        )

    return (
        restrict(host_domain),
        restrict(domain_ip),
        restrict(domain_time),
        report,
    )
