"""Behavioral modeling of domains via bipartite graphs (paper section 4).

Three bipartite graphs capture domain behavior — host-domain interactions
(HDBG), domain-IP resolutions (DIBG), and domain-time activity (DTBG) —
and their one-mode projections onto the domain vertex set yield the
query-behavior, IP-resolving, and temporal similarity graphs whose edge
weights are Jaccard indices (equations 1-3).
"""

from repro.graphs.bipartite import (
    AdjacencyView,
    BipartiteGraph,
    build_domain_ip_graph,
    build_domain_time_graph,
    build_host_domain_graph,
    build_query_graphs,
    fold_records_into_graphs,
)
from repro.graphs.core import EdgeList, VertexTable
from repro.graphs.pruning import PruningReport, PruningRules, prune_graphs
from repro.graphs.projection import SimilarityGraph, project_to_similarity
from repro.graphs.host_projection import (
    InfectedHostGroup,
    find_infected_host_groups,
    project_hosts,
    transpose_bipartite,
)

__all__ = [
    "AdjacencyView",
    "BipartiteGraph",
    "EdgeList",
    "InfectedHostGroup",
    "PruningReport",
    "PruningRules",
    "SimilarityGraph",
    "VertexTable",
    "find_infected_host_groups",
    "project_hosts",
    "transpose_bipartite",
    "build_domain_ip_graph",
    "build_domain_time_graph",
    "build_host_domain_graph",
    "build_query_graphs",
    "fold_records_into_graphs",
    "project_to_similarity",
    "prune_graphs",
]
