"""Interned columnar graph core.

Every graph stage used to shuttle raw Python strings through
``dict[str, set]`` adjacency, copying and re-sorting them at each
hand-off. This module provides the shared array-backed foundation the
whole graph layer now builds on:

* :class:`VertexTable` — a string/value interner mapping vertex values
  (domain e2LDs, host identifiers, IPs, time-window indices) to dense
  integer ids, with a *typed deterministic* ordering that replaces the
  old rebuild-unstable ``sorted(key=repr)``;
* :class:`EdgeList` — append-only interned ``(left_id, right_id)`` edge
  buffers with two ingestion modes (eager hash-deduplication for
  streaming, raw append + periodic vectorized compaction for batch
  builders), O(1) edge/vertex counters in eager mode, and a lazily
  built CSR index for O(degree) neighborhood queries.

Compaction policy: raw appends go straight into growable numpy buffers;
``compact()`` removes duplicate edges with one vectorized
``np.unique`` pass over packed 64-bit keys, preserving first-occurrence
order. Structural queries (counts, CSR, incidence) trigger compaction
lazily, so a builder can append millions of raw edges and pay one
O(E log E) pass at the end instead of a hash lookup per record.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.errors import GraphConstructionError

__all__ = ["VertexTable", "EdgeList"]

#: Initial capacity of an edge buffer (doubles on growth).
_INITIAL_CAPACITY = 16

#: Bits reserved for the right id inside a packed 64-bit edge key.
_PACK_SHIFT = np.uint64(32)
_MAX_ID = (1 << 32) - 1


def _type_rank(value: object) -> tuple[int, object]:
    """Sort key giving a total, type-stable order over vertex values.

    Numbers sort numerically before strings (the old ``sorted(key=repr)``
    interleaved them lexicographically — ``10`` before ``2`` — and the
    order changed with the set's insertion history); anything else falls
    back to its repr. The result is deterministic across rebuilds because
    it depends only on the values, never on insertion order.
    """
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float, np.integer, np.floating)):
        return (0, float(value))
    if isinstance(value, str):
        return (1, value)
    return (2, repr(value))


class VertexTable:
    """Bidirectional value <-> dense-id interner for one vertex set.

    Ids are assigned in first-intern order, so iterating :attr:`values`
    reproduces insertion order (the order the old dict adjacency
    exposed). The table is append-only: once interned, a value keeps its
    id forever, which lets multiple graphs share one table — the
    pipeline threads a single domain table through all three bipartite
    views so their vertex ids (and therefore every downstream ordering)
    agree without re-sorting.
    """

    __slots__ = ("_ids", "_values", "__weakref__")

    def __init__(self, values: Iterable[Hashable] | None = None) -> None:
        self._ids: dict[Hashable, int] = {}
        self._values: list[Hashable] = []
        if values is not None:
            for value in values:
                self.intern(value)

    def intern(self, value: Hashable) -> int:
        """Id of ``value``, assigning the next dense id on first sight."""
        vid = self._ids.get(value)
        if vid is None:
            vid = len(self._values)
            if vid > _MAX_ID:
                raise GraphConstructionError("vertex table overflow (2^32 ids)")
            self._ids[value] = vid
            self._values.append(value)
        return vid

    def id_of(self, value: Hashable) -> int | None:
        """Id of ``value`` or None when it was never interned."""
        return self._ids.get(value)

    def value_of(self, vid: int) -> Hashable:
        return self._values[vid]

    @property
    def values(self) -> list[Hashable]:
        """All interned values in id (= insertion) order. Copy-safe."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"VertexTable({len(self._values)} vertices)"

    def typed_order(self, ids: np.ndarray | None = None) -> list[Hashable]:
        """Values of ``ids`` (default: all) in typed deterministic order.

        This is the ordering contract for incidence-matrix columns:
        numeric vertices (time-window indices) sort numerically, strings
        lexicographically, numbers before strings — stable across
        rebuilds regardless of insertion history.
        """
        if ids is None:
            values: list[Hashable] = self._values
        else:
            values = [self._values[int(i)] for i in ids]
        return sorted(values, key=_type_rank)

    # -- persistence -----------------------------------------------------

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(string form, type codes) arrays — a pickle-free encoding.

        Type code 0 = int, 1 = str. Other value types are not
        persistable (nothing in the pipeline produces them).
        """
        strings = np.empty(len(self._values), dtype=object)
        codes = np.empty(len(self._values), dtype=np.int8)
        for i, value in enumerate(self._values):
            if isinstance(value, (int, np.integer)) and not isinstance(
                value, bool
            ):
                strings[i] = str(int(value))
                codes[i] = 0
            elif isinstance(value, str):
                strings[i] = value
                codes[i] = 1
            else:
                raise GraphConstructionError(
                    f"cannot persist vertex of type {type(value).__name__}"
                )
        # A unicode array round-trips through npz without pickle.
        return strings.astype(np.str_), codes

    @classmethod
    def from_arrays(
        cls, strings: np.ndarray, codes: np.ndarray
    ) -> "VertexTable":
        """Rebuild a table written by :meth:`to_arrays`."""
        table = cls()
        for text, code in zip(strings, codes):
            table.intern(int(text) if int(code) == 0 else str(text))
        return table


class EdgeList:
    """Append-only columnar (left_id, right_id) edge buffer.

    Two ingestion modes:

    * :meth:`add` — eager mode: a packed-key hash index rejects
      duplicate edges at append time, keeping :attr:`edge_count`,
      :meth:`left_count` and per-graph vertex bookkeeping exact in O(1).
      This is the streaming path, where metric gauges read the counters
      after every batch.
    * :meth:`extend_raw` / :meth:`append_raw` — raw mode: edges land in
      the buffers unchecked (duplicates allowed) and the next structural
      query triggers :meth:`compact`, a single vectorized dedup pass.
      This is the batch-builder path, where per-record hash lookups
      would dominate the hot loop.

    The CSR index (neighbors grouped by left id) is built lazily and
    cached until the next append dirties it.
    """

    __slots__ = (
        "_left",
        "_right",
        "_n",
        "_deduped",
        "_seen",
        "_left_seen",
        "_left_order",
        "_csr_order",
        "_csr_indptr",
        "_right_used",
    )

    def __init__(self) -> None:
        self._left = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._right = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n = 0
        #: Buffer known duplicate-free (raw appends clear this).
        self._deduped = True
        # Eager-mode hash indexes; None = not built. They are only
        # needed by add() — batch paths never pay for them.
        self._seen: set[int] | None = set()
        self._left_seen: set[int] | None = set()
        #: Distinct left ids in first-occurrence order; None = unknown.
        self._left_order: list[int] | None = []
        self._csr_order: np.ndarray | None = None
        self._csr_indptr: np.ndarray | None = None
        self._right_used: np.ndarray | None = None

    # -- appends ---------------------------------------------------------

    def _grow_to(self, needed: int) -> None:
        if needed <= len(self._left):
            return
        capacity = max(len(self._left), _INITIAL_CAPACITY)
        while capacity < needed:
            capacity *= 2
        self._left = np.resize(self._left, capacity)
        self._right = np.resize(self._right, capacity)

    def _invalidate_caches(self) -> None:
        self._csr_order = None
        self._csr_indptr = None
        self._right_used = None

    def _build_hash_index(self) -> None:
        """(Re)build the eager-mode indexes from the compacted buffer."""
        self.compact()
        lefts = self._left[: self._n]
        rights = self._right[: self._n]
        packed = (lefts.astype(np.uint64) << _PACK_SHIFT) | rights.astype(
            np.uint64
        )
        self._seen = set(packed.tolist())
        self._left_order = self.left_ids_ordered()
        self._left_seen = set(self._left_order)

    def add(self, left: int, right: int) -> bool:
        """Append one edge with eager dedup; True when the edge is new."""
        if self._seen is None:
            self._build_hash_index()
        assert self._seen is not None
        assert self._left_seen is not None and self._left_order is not None
        key = (left << 32) | right
        if key in self._seen:
            return False
        self._seen.add(key)
        if left not in self._left_seen:
            self._left_seen.add(left)
            self._left_order.append(left)
        self._grow_to(self._n + 1)
        self._left[self._n] = left
        self._right[self._n] = right
        self._n += 1
        self._invalidate_caches()
        return True

    def append_raw(self, left: int, right: int) -> None:
        """Append one edge without dedup (compacted later)."""
        self._grow_to(self._n + 1)
        self._left[self._n] = left
        self._right[self._n] = right
        self._n += 1
        self._deduped = False
        self._seen = None
        self._left_seen = None
        self._left_order = None
        self._invalidate_caches()

    def extend_raw(
        self, lefts: Iterable[int], rights: Iterable[int]
    ) -> None:
        """Bulk raw append of two equal-length id sequences."""
        left_arr = np.asarray(lefts, dtype=np.int64)
        right_arr = np.asarray(rights, dtype=np.int64)
        if left_arr.shape != right_arr.shape or left_arr.ndim != 1:
            raise GraphConstructionError(
                "extend_raw needs two equal-length 1-d id sequences"
            )
        if left_arr.size == 0:
            return
        self._grow_to(self._n + left_arr.size)
        self._left[self._n : self._n + left_arr.size] = left_arr
        self._right[self._n : self._n + right_arr.size] = right_arr
        self._n += left_arr.size
        self._deduped = False
        self._seen = None
        self._left_seen = None
        self._left_order = None
        self._invalidate_caches()

    # -- compaction ------------------------------------------------------

    def compact(self) -> None:
        """Vectorized dedup of the raw buffer, first-occurrence order.

        One ``np.unique`` pass over packed 64-bit keys; idempotent and a
        no-op when the buffer is already duplicate-free. The eager-mode
        hash indexes are *not* rebuilt here — :meth:`add` rebuilds them
        on demand, so pure batch pipelines never pay for a Python-set
        index over millions of edges.
        """
        if self._deduped:
            return
        lefts = self._left[: self._n]
        rights = self._right[: self._n]
        packed = (lefts.astype(np.uint64) << _PACK_SHIFT) | rights.astype(
            np.uint64
        )
        __, first = np.unique(packed, return_index=True)
        if first.size != self._n:
            first.sort()
            lefts = lefts[first]
            rights = rights[first]
            self._n = lefts.size
            self._left = lefts.copy()
            self._right = rights.copy()
        self._deduped = True
        self._invalidate_caches()

    @classmethod
    def _from_trusted(cls, lefts: np.ndarray, rights: np.ndarray) -> "EdgeList":
        """Adopt columns already known to be duplicate-free (no checks)."""
        edges = cls()
        edges._left = np.ascontiguousarray(lefts, dtype=np.int64)
        edges._right = np.ascontiguousarray(rights, dtype=np.int64)
        edges._n = edges._left.size
        edges._deduped = True
        edges._seen = None
        edges._left_seen = None
        edges._left_order = None
        return edges

    # -- counters & columns ----------------------------------------------

    @property
    def edge_count(self) -> int:
        """Number of distinct edges — O(1) once compacted / in eager mode."""
        if not self._deduped:
            self.compact()
        return self._n

    def left_count(self) -> int:
        """Number of distinct left vertices with >= 1 edge — O(1) eager."""
        return len(self.left_ids_ordered()) if self._left_order is None \
            else len(self._left_order)

    def left_ids_ordered(self) -> list[int]:
        """Distinct left ids in first-occurrence order."""
        if self._left_order is None:
            self.compact()
            lefts = self._left[: self._n]
            __, left_first = np.unique(lefts, return_index=True)
            left_first.sort()
            self._left_order = [int(i) for i in lefts[left_first]]
        return list(self._left_order)

    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The deduplicated (lefts, rights) id columns (read-only views)."""
        if not self._deduped:
            self.compact()
        lefts = self._left[: self._n]
        rights = self._right[: self._n]
        lefts.flags.writeable = False
        rights.flags.writeable = False
        return lefts, rights

    def right_ids_used(self) -> np.ndarray:
        """Sorted distinct right ids that appear in at least one edge."""
        if self._right_used is None:
            __, rights = self.columns()
            self._right_used = np.unique(rights)
        return self._right_used

    def left_degrees(self, table_size: int) -> np.ndarray:
        """Degree per left id, as an array of length ``table_size``."""
        lefts, __ = self.columns()
        return np.bincount(lefts, minlength=table_size)

    # -- CSR index -------------------------------------------------------

    def _ensure_csr(self) -> None:
        if self._csr_order is not None:
            return
        lefts, __ = self.columns()
        if lefts.size:
            order = np.argsort(lefts, kind="stable")
            counts = np.bincount(lefts)
            indptr = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
        else:
            order = np.empty(0, dtype=np.int64)
            indptr = np.zeros(1, dtype=np.int64)
        self._csr_order = order
        self._csr_indptr = indptr

    def neighbors_of_left(self, left: int) -> np.ndarray:
        """Right ids adjacent to ``left`` — O(degree) via the CSR index."""
        self._ensure_csr()
        assert self._csr_order is not None and self._csr_indptr is not None
        if left < 0 or left >= self._csr_indptr.size - 1:
            return np.empty(0, dtype=np.int64)
        start = self._csr_indptr[left]
        stop = self._csr_indptr[left + 1]
        __, rights = self.columns()
        return rights[self._csr_order[start:stop]]

    def degree_of_left(self, left: int) -> int:
        self._ensure_csr()
        assert self._csr_indptr is not None
        if left < 0 or left >= self._csr_indptr.size - 1:
            return 0
        return int(self._csr_indptr[left + 1] - self._csr_indptr[left])

    def copy(self) -> "EdgeList":
        """Independent copy sharing no buffers (compacted)."""
        lefts, rights = self.columns()
        return EdgeList._from_trusted(lefts.copy(), rights.copy())

    def __len__(self) -> int:
        return self.edge_count

    def __repr__(self) -> str:
        state = "compact" if self._deduped else "raw"
        return f"EdgeList({self._n} buffered edges, {state})"
