"""One-mode projection of bipartite graphs onto the domain vertex set.

Projecting a domain-vs-X bipartite graph yields a weighted domain-domain
similarity graph whose edge weights are Jaccard indices over the domains'
X-neighborhoods (paper equations 1-3):

    sim(d_i, d_j) = |N(d_i) ∩ N(d_j)| / |N(d_i) ∪ N(d_j)|

Computing all-pairs Jaccard naively is O(|D|^2 · degree). Instead the
intersection counts come from one sparse matrix product M·Mᵀ (M is the
binary incidence matrix), evaluated in row blocks so memory stays bounded
even when the co-occurrence structure is dense (the temporal graph's
minute windows are shared by many domains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np
from scipy import sparse

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    import networkx as nx

from repro.errors import GraphConstructionError
from repro.graphs.bipartite import BipartiteGraph


@dataclass(slots=True)
class SimilarityGraph:
    """A weighted, undirected domain-domain similarity graph.

    Edges are stored once with ``row < col``; weights lie in (0, 1].
    Neighborhood queries go through a lazily built CSR index (the edge
    arrays are immutable once constructed), making
    :meth:`weight_between` O(log degree) and :meth:`neighbors_of`
    O(degree) instead of full-edge-array scans.
    """

    kind: str
    domains: list[str]
    rows: np.ndarray
    cols: np.ndarray
    weights: np.ndarray
    domain_index: dict[str, int] = field(default_factory=dict)
    _csr_indptr: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _csr_neighbors: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _csr_weights: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.domain_index:
            self.domain_index = {d: i for i, d in enumerate(self.domains)}

    @property
    def node_count(self) -> int:
        return len(self.domains)

    @property
    def edge_count(self) -> int:
        return int(self.rows.size)

    def _ensure_index(self) -> None:
        """Build the symmetric CSR neighbor index once, on first use."""
        if self._csr_indptr is not None:
            return
        n = self.node_count
        src = np.concatenate([self.rows, self.cols]).astype(np.int64)
        dst = np.concatenate([self.cols, self.rows]).astype(np.int64)
        wgt = np.concatenate([self.weights, self.weights]).astype(np.float64)
        order = np.lexsort((dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        self._csr_indptr = indptr
        self._csr_neighbors = dst
        self._csr_weights = wgt

    def weight_between(self, domain_a: str, domain_b: str) -> float:
        """Similarity between two domains (0.0 when no edge)."""
        index_a = self.domain_index.get(domain_a)
        index_b = self.domain_index.get(domain_b)
        if index_a is None or index_b is None or index_a == index_b:
            return 0.0
        self._ensure_index()
        assert self._csr_indptr is not None
        assert self._csr_neighbors is not None
        assert self._csr_weights is not None
        start = self._csr_indptr[index_a]
        stop = self._csr_indptr[index_a + 1]
        hood = self._csr_neighbors[start:stop]
        position = int(np.searchsorted(hood, index_b))
        if position < hood.size and int(hood[position]) == index_b:
            return float(self._csr_weights[start + position])
        return 0.0

    def neighbors_of(self, domain: str) -> list[tuple[str, float]]:
        """All (neighbor, weight) pairs of ``domain``."""
        index = self.domain_index.get(domain)
        if index is None:
            return []
        self._ensure_index()
        assert self._csr_indptr is not None
        assert self._csr_neighbors is not None
        assert self._csr_weights is not None
        start = self._csr_indptr[index]
        stop = self._csr_indptr[index + 1]
        return [
            (self.domains[int(other)], float(weight))
            for other, weight in zip(
                self._csr_neighbors[start:stop],
                self._csr_weights[start:stop],
            )
        ]

    def iter_edges(self) -> Iterator[tuple[str, str, float]]:
        for row, col, weight in zip(self.rows, self.cols, self.weights):
            yield self.domains[int(row)], self.domains[int(col)], float(weight)

    def to_networkx(self) -> "nx.Graph":
        """Export as a weighted networkx Graph (for analysis/debugging)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.domains)
        graph.add_weighted_edges_from(self.iter_edges())
        return graph

    def degree_array(self) -> np.ndarray:
        """Weighted degree per node, aligned with :attr:`domains`."""
        degrees = np.zeros(self.node_count)
        np.add.at(degrees, self.rows, self.weights)
        np.add.at(degrees, self.cols, self.weights)
        return degrees


def project_to_similarity(
    graph: BipartiteGraph,
    domain_order: list[str] | None = None,
    min_similarity: float = 1e-9,
    block_size: int = 512,
) -> SimilarityGraph:
    """One-mode projection with Jaccard weights (paper section 4.2).

    Args:
        graph: The bipartite graph to project.
        domain_order: Optional fixed vertex ordering, so the three
            similarity views share indices; defaults to the graph's sorted
            domain set.
        min_similarity: Edges below this Jaccard value are discarded
            (``1e-9`` keeps every nonzero overlap, matching the paper's
            "full similarity graphs").
        block_size: Row-block height for the sparse matrix product.

    Returns:
        The weighted similarity graph over ``domain_order``.
    """
    if min_similarity < 0:
        raise GraphConstructionError("min_similarity must be non-negative")
    matrix, order = graph._incidence_csr(domain_order)
    n = matrix.shape[0]
    degrees = np.asarray(matrix.sum(axis=1)).ravel()

    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    weights_out: list[np.ndarray] = []
    transposed = matrix.T.tocsc()
    for block_start in range(0, n, block_size):
        block_end = min(block_start + block_size, n)
        if block_start == 0 and block_end == n:
            block = matrix  # single block: skip the row-slice copy
        else:
            block = matrix[block_start:block_end]
        # Intersection counts for this row block against all domains.
        intersections = (block @ transposed).tocoo()
        if intersections.nnz == 0:
            continue
        block_rows = intersections.row + block_start
        cols = intersections.col
        inter = intersections.data
        # Keep strictly upper-triangular pairs (undirected, no diagonal).
        keep = block_rows < cols
        block_rows, cols, inter = block_rows[keep], cols[keep], inter[keep]
        if block_rows.size == 0:
            continue
        union = degrees[block_rows] + degrees[cols] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            jaccard = np.where(union > 0, inter / union, 0.0)
        keep = jaccard >= max(min_similarity, 1e-12)
        rows_out.append(block_rows[keep])
        cols_out.append(cols[keep])
        weights_out.append(jaccard[keep])

    if rows_out:
        rows = np.concatenate(rows_out).astype(np.int64)
        cols = np.concatenate(cols_out).astype(np.int64)
        weights = np.concatenate(weights_out)
        # Canonical (row, col) edge order. The sparse product enumerates
        # columns in an order that depends on the incidence matrix's
        # column permutation — i.e. on the right-hand vertex *intern*
        # order, which differs between a monolithic build and a chunked
        # one. Sorting here makes the projection a pure function of the
        # graph's edge set, so everything downstream (LINE edge sampling,
        # degree accumulation) is byte-identical across ingestion modes.
        order_index = np.lexsort((cols, rows))
        rows = rows[order_index]
        cols = cols[order_index]
        weights = weights[order_index]
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        weights = np.empty(0)
    return SimilarityGraph(
        kind=graph.kind, domains=list(order), rows=rows, cols=cols, weights=weights
    )
