"""One-mode projection of bipartite graphs onto the domain vertex set.

Projecting a domain-vs-X bipartite graph yields a weighted domain-domain
similarity graph whose edge weights are Jaccard indices over the domains'
X-neighborhoods (paper equations 1-3):

    sim(d_i, d_j) = |N(d_i) ∩ N(d_j)| / |N(d_i) ∪ N(d_j)|

Computing all-pairs Jaccard naively is O(|D|^2 · degree). Instead the
intersection counts come from one sparse matrix product M·Mᵀ (M is the
binary incidence matrix), evaluated in row blocks so memory stays bounded
even when the co-occurrence structure is dense (the temporal graph's
minute windows are shared by many domains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np
from scipy import sparse

from repro.errors import GraphConstructionError
from repro.graphs.bipartite import BipartiteGraph


@dataclass(slots=True)
class SimilarityGraph:
    """A weighted, undirected domain-domain similarity graph.

    Edges are stored once with ``row < col``; weights lie in (0, 1].
    """

    kind: str
    domains: list[str]
    rows: np.ndarray
    cols: np.ndarray
    weights: np.ndarray
    domain_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.domain_index:
            self.domain_index = {d: i for i, d in enumerate(self.domains)}

    @property
    def node_count(self) -> int:
        return len(self.domains)

    @property
    def edge_count(self) -> int:
        return int(self.rows.size)

    def weight_between(self, domain_a: str, domain_b: str) -> float:
        """Similarity between two domains (0.0 when no edge)."""
        index_a = self.domain_index.get(domain_a)
        index_b = self.domain_index.get(domain_b)
        if index_a is None or index_b is None or index_a == index_b:
            return 0.0
        low, high = min(index_a, index_b), max(index_a, index_b)
        mask = (self.rows == low) & (self.cols == high)
        position = np.flatnonzero(mask)
        return float(self.weights[position[0]]) if position.size else 0.0

    def neighbors_of(self, domain: str) -> list[tuple[str, float]]:
        """All (neighbor, weight) pairs of ``domain``."""
        index = self.domain_index.get(domain)
        if index is None:
            return []
        result: list[tuple[str, float]] = []
        for positions, other in (
            (np.flatnonzero(self.rows == index), self.cols),
            (np.flatnonzero(self.cols == index), self.rows),
        ):
            for position in positions:
                result.append(
                    (self.domains[int(other[position])],
                     float(self.weights[position]))
                )
        return result

    def iter_edges(self) -> Iterator[tuple[str, str, float]]:
        for row, col, weight in zip(self.rows, self.cols, self.weights):
            yield self.domains[int(row)], self.domains[int(col)], float(weight)

    def to_networkx(self):
        """Export as a weighted networkx Graph (for analysis/debugging)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.domains)
        graph.add_weighted_edges_from(self.iter_edges())
        return graph

    def degree_array(self) -> np.ndarray:
        """Weighted degree per node, aligned with :attr:`domains`."""
        degrees = np.zeros(self.node_count)
        np.add.at(degrees, self.rows, self.weights)
        np.add.at(degrees, self.cols, self.weights)
        return degrees


def project_to_similarity(
    graph: BipartiteGraph,
    domain_order: list[str] | None = None,
    min_similarity: float = 1e-9,
    block_size: int = 512,
) -> SimilarityGraph:
    """One-mode projection with Jaccard weights (paper section 4.2).

    Args:
        graph: The bipartite graph to project.
        domain_order: Optional fixed vertex ordering, so the three
            similarity views share indices; defaults to the graph's sorted
            domain set.
        min_similarity: Edges below this Jaccard value are discarded
            (``1e-9`` keeps every nonzero overlap, matching the paper's
            "full similarity graphs").
        block_size: Row-block height for the sparse matrix product.

    Returns:
        The weighted similarity graph over ``domain_order``.
    """
    if min_similarity < 0:
        raise GraphConstructionError("min_similarity must be non-negative")
    matrix, order, __ = graph.incidence_matrix(domain_order)
    n = matrix.shape[0]
    degrees = np.asarray(matrix.sum(axis=1)).ravel()

    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    weights_out: list[np.ndarray] = []
    transposed = matrix.T.tocsc()
    for block_start in range(0, n, block_size):
        block_end = min(block_start + block_size, n)
        block = matrix[block_start:block_end]
        # Intersection counts for this row block against all domains.
        intersections = (block @ transposed).tocoo()
        if intersections.nnz == 0:
            continue
        block_rows = intersections.row + block_start
        cols = intersections.col
        inter = intersections.data
        # Keep strictly upper-triangular pairs (undirected, no diagonal).
        keep = block_rows < cols
        block_rows, cols, inter = block_rows[keep], cols[keep], inter[keep]
        if block_rows.size == 0:
            continue
        union = degrees[block_rows] + degrees[cols] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            jaccard = np.where(union > 0, inter / union, 0.0)
        keep = jaccard >= max(min_similarity, 1e-12)
        rows_out.append(block_rows[keep])
        cols_out.append(cols[keep])
        weights_out.append(jaccard[keep])

    if rows_out:
        rows = np.concatenate(rows_out).astype(np.int64)
        cols = np.concatenate(cols_out).astype(np.int64)
        weights = np.concatenate(weights_out)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        weights = np.empty(0)
    return SimilarityGraph(
        kind=graph.kind, domains=list(order), rows=rows, cols=cols, weights=weights
    )
