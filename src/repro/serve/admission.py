"""Admission control for the scoring service: bounded concurrency,
bounded waiting, and per-request deadlines.

``ThreadingHTTPServer`` gives every connection its own handler thread,
which means an overloaded service degrades by piling up threads — each
one holding a socket, a request body, and eventually a slice of the
scorer's time. The :class:`AdmissionController` turns that failure mode
into explicit, bounded behavior:

* at most ``max_inflight`` requests execute concurrently;
* at most ``queue_depth`` more may wait for a slot; anything beyond
  that is **shed** immediately (HTTP 429 with a ``Retry-After`` hint)
  instead of queueing without bound;
* a waiter whose :class:`Deadline` expires before a slot frees is
  rejected (HTTP 503) rather than served a result it stopped waiting
  for.

The controller is service-agnostic: it knows nothing about HTTP. The
service maps :data:`ADMITTED` / :data:`SHED` / :data:`DEADLINE` onto
status codes and must call :meth:`AdmissionController.release` exactly
once per admitted request (use a ``try/finally``).

``Retry-After`` is an estimate, not a promise: the controller keeps an
exponentially weighted moving average of observed service times and
suggests roughly "time for the current backlog to drain", clamped to
[1, 30] seconds so a pathological EWMA can never tell clients to go
away for an hour.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "ADMITTED",
    "DEADLINE",
    "SHED",
    "AdmissionController",
    "AdmissionResult",
    "Deadline",
]


class Deadline:
    """A wall-clock budget for one request (monotonic internally)."""

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float) -> None:
        self._expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left (<= 0 once expired)."""
        return self._expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0.0


@dataclass(frozen=True, slots=True)
class AdmissionResult:
    """Outcome of one admission attempt.

    Attributes:
        status: One of :data:`ADMITTED`, :data:`SHED`, :data:`DEADLINE`.
        retry_after_seconds: Backoff hint for shed requests (0 for the
            other outcomes).
        queue_wait_seconds: Time spent waiting for a slot.
    """

    status: str
    retry_after_seconds: int = 0
    queue_wait_seconds: float = 0.0

    @property
    def admitted(self) -> bool:
        """Whether the request may proceed (and must later release)."""
        return self.status == ADMITTED


ADMITTED = "admitted"
SHED = "shed"
DEADLINE = "deadline"


class AdmissionController:
    """Bounded-concurrency gate with a bounded wait queue.

    Args:
        max_inflight: Requests allowed to execute concurrently (>= 1).
        queue_depth: Requests allowed to wait for a slot (>= 0; 0 means
            shed as soon as all slots are busy).
        metrics: Registry for admission metrics (process default when
            omitted).
    """

    def __init__(
        self,
        max_inflight: int,
        queue_depth: int,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self._condition = threading.Condition(threading.Lock())
        self._inflight = 0
        self._waiting = 0
        # EWMA of observed service times, seeded pessimistically at
        # 50ms so the very first Retry-After is sane.
        self._service_ewma = 0.05
        registry = metrics if metrics is not None else default_registry()
        self._admitted = registry.counter("serve.admitted")
        self._shed = registry.counter("serve.shed")
        self._deadline_exceeded = registry.counter("serve.deadline_exceeded")
        self._inflight_gauge = registry.gauge("serve.inflight")
        self._queue_gauge = registry.gauge("serve.queue.depth")
        self._wait_histogram = registry.histogram("serve.queue_wait.seconds")

    # ------------------------------------------------------------------
    # Introspection (tests, /metrics consumers)

    @property
    def inflight(self) -> int:
        """Requests currently executing."""
        with self._condition:
            return self._inflight

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._condition:
            return self._waiting

    # ------------------------------------------------------------------
    # The gate

    def try_acquire(self, deadline: Deadline) -> AdmissionResult:
        """Attempt admission, waiting (bounded) for a slot.

        Returns an :class:`AdmissionResult`; when ``.admitted`` the
        caller owns one slot and must call :meth:`release` when done.
        """
        started = time.monotonic()
        with self._condition:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._inflight_gauge.set(self._inflight)
                self._admitted.inc()
                return AdmissionResult(ADMITTED)
            if self._waiting >= self.queue_depth:
                self._shed.inc()
                return AdmissionResult(
                    SHED, retry_after_seconds=self._retry_after_locked()
                )
            self._waiting += 1
            self._queue_gauge.set(self._waiting)
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        self._deadline_exceeded.inc()
                        # A notify may have woken us just as the
                        # deadline hit; pass it on so a free slot can't
                        # be stranded while other waiters sleep.
                        self._condition.notify()
                        return AdmissionResult(
                            DEADLINE,
                            queue_wait_seconds=time.monotonic() - started,
                        )
                    self._condition.wait(remaining)
            finally:
                self._waiting -= 1
                self._queue_gauge.set(self._waiting)
            self._inflight += 1
            self._inflight_gauge.set(self._inflight)
            waited = time.monotonic() - started
            self._wait_histogram.observe(waited)
            self._admitted.inc()
            return AdmissionResult(ADMITTED, queue_wait_seconds=waited)

    def release(self, service_seconds: float | None = None) -> None:
        """Return one slot; optionally record the observed service time
        (feeds the ``Retry-After`` estimate)."""
        with self._condition:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching acquire")
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)
            if service_seconds is not None and service_seconds >= 0.0:
                self._service_ewma += 0.2 * (
                    service_seconds - self._service_ewma
                )
            self._condition.notify()

    def _retry_after_locked(self) -> int:
        """Seconds a shed client should back off (caller holds lock).

        Estimates the backlog drain time: everything queued plus
        everything running, paced by ``max_inflight`` parallel slots at
        the EWMA service time. Clamped to [1, 30].
        """
        backlog = self._waiting + self._inflight
        estimate = self._service_ewma * backlog / self.max_inflight
        return max(1, min(30, math.ceil(estimate)))
