"""Model-artifact bundles: everything online scoring needs, in one place.

A :class:`ModelBundle` freezes the output of one training run — the
fitted :class:`~repro.core.detector.MaliciousDomainClassifier`, an
optional feature scaler, the concatenated per-domain feature matrix with
its domain vocabulary, and a :class:`BundleManifest` describing where
the model came from (schema version, creation time, pipeline-config
fingerprint, metric summary).

Bundles persist as a directory of typed ``.npz`` files plus a
``manifest.json`` sidecar, written and read with ``allow_pickle=False``
throughout so artifacts are safe to load from shared storage. Every
array file's SHA-256 is recorded in the manifest and re-verified on
load; a mismatch raises
:class:`~repro.errors.ArtifactIntegrityError` instead of silently
serving a corrupt model.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.dataflow import CLASSIFIER, DOMAIN_ORDER, FEATURE_SPACE
from repro.core.detector import MaliciousDomainClassifier
from repro.core.persistence import (
    load_classifier,
    load_scaler,
    save_classifier,
    save_scaler,
)
from repro.errors import ArtifactIntegrityError, DatasetError, NotFittedError
from repro.ml.preprocessing import StandardScaler

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.pipeline import MaliciousDomainDetector, PipelineConfig
    from repro.core.stages import ArtifactStore

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "MANIFEST_FILENAME",
    "BundleManifest",
    "ModelBundle",
]

BUNDLE_SCHEMA_VERSION = 1
MANIFEST_FILENAME = "manifest.json"

_CLASSIFIER_FILE = "classifier.npz"
_FEATURES_FILE = "features.npz"
_SCALER_FILE = "scaler.npz"


def _sha256(path: Path) -> str:
    """Hex SHA-256 of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(slots=True)
class BundleManifest:
    """Human- and machine-readable description of a saved bundle.

    Attributes:
        schema_version: Bundle format version; loaders reject mismatches.
        created_at: Unix timestamp of bundle creation.
        config_fingerprint: Opaque hash of the pipeline configuration
            that produced the model — two bundles with equal fingerprints
            were trained under identical knobs.
        metrics: Summary numbers from training (sample counts, support
            vectors, training accuracy, ...), for display and audit.
        domain_count: Rows in the feature matrix.
        feature_dimension: Columns in the feature matrix (3k).
        threshold: The classifier's calibrated decision threshold.
        files: Artifact filename -> hex SHA-256, filled in at save time
            and verified on load.
    """

    schema_version: int = BUNDLE_SCHEMA_VERSION
    created_at: float = 0.0
    config_fingerprint: str = ""
    metrics: dict[str, float] = field(default_factory=dict)
    domain_count: int = 0
    feature_dimension: int = 0
    threshold: float = 0.0
    files: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize as stable, indented JSON."""
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BundleManifest":
        """Parse a manifest written by :meth:`to_json`."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"unreadable bundle manifest: {exc}") from exc
        if not isinstance(raw, dict):
            raise DatasetError("bundle manifest must be a JSON object")
        known = {f: raw[f] for f in cls.__dataclass_fields__ if f in raw}
        return cls(**known)


@dataclass(slots=True)
class ModelBundle:
    """A self-contained scoring artifact.

    Holds the fitted classifier, the feature matrix for every domain the
    model knows (row ``i`` is ``domains[i]``'s concatenated per-view
    embedding), an optional scaler applied before the decision function,
    and the manifest. Use :meth:`from_detector` to package a trained
    pipeline, :meth:`save`/:meth:`load` to move it through disk, and
    :class:`~repro.serve.scorer.DomainScorer` to answer queries from it.
    """

    classifier: MaliciousDomainClassifier
    features: np.ndarray
    domains: list[str]
    scaler: StandardScaler | None = None
    manifest: BundleManifest = field(default_factory=BundleManifest)

    @classmethod
    def create(
        cls,
        classifier: MaliciousDomainClassifier,
        features: np.ndarray,
        domains: list[str],
        scaler: StandardScaler | None = None,
        config_fingerprint: str = "",
        metrics: Mapping[str, float] | None = None,
        created_at: float | None = None,
    ) -> "ModelBundle":
        """Assemble a bundle and fill in its manifest."""
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise DatasetError("bundle features must be a 2-D matrix")
        if features.shape[0] != len(domains):
            raise DatasetError(
                f"feature rows ({features.shape[0]}) disagree with domain "
                f"vocabulary size ({len(domains)})"
            )
        manifest = BundleManifest(
            created_at=time.time() if created_at is None else created_at,
            config_fingerprint=config_fingerprint,
            metrics=dict(metrics or {}),
            domain_count=len(domains),
            feature_dimension=int(features.shape[1]),
            threshold=float(classifier.threshold_),
        )
        return cls(
            classifier=classifier,
            features=features,
            domains=list(domains),
            scaler=scaler,
            manifest=manifest,
        )

    @classmethod
    def from_artifacts(
        cls,
        store: "ArtifactStore",
        config: "PipelineConfig",
        scaler: StandardScaler | None = None,
        metrics: Mapping[str, float] | None = None,
        created_at: float | None = None,
    ) -> "ModelBundle":
        """Package a pipeline :class:`~repro.core.stages.ArtifactStore`.

        Reads the fitted classifier, feature space, and domain order
        straight from the stage-graph artifact store, so any execution
        path (batch facade, streaming refresh, checkpointed run) can be
        bundled without going through a detector object.
        """
        classifier = store.maybe(CLASSIFIER)
        if classifier is None:
            raise NotFittedError("MaliciousDomainDetector.fit")
        space = store.maybe(FEATURE_SPACE)
        if space is None:
            raise NotFittedError("MaliciousDomainDetector.learn_embeddings")
        order = store.maybe(DOMAIN_ORDER)
        domains = list(order) if order is not None else list(space.query.domains)
        features = space.matrix(domains, config.views)
        fingerprint = hashlib.sha256(
            repr(config).encode("utf-8")
        ).hexdigest()
        summary: dict[str, float] = {
            "support_vectors": float(classifier.support_vector_count),
        }
        summary.update(metrics or {})
        return cls.create(
            classifier=classifier,
            features=features,
            domains=domains,
            scaler=scaler,
            config_fingerprint=fingerprint,
            metrics=summary,
            created_at=created_at,
        )

    @classmethod
    def from_detector(
        cls,
        detector: "MaliciousDomainDetector",
        scaler: StandardScaler | None = None,
        metrics: Mapping[str, float] | None = None,
        created_at: float | None = None,
    ) -> "ModelBundle":
        """Package a fitted end-to-end detector for serving.

        The feature matrix covers every domain that survived pruning, so
        a :class:`~repro.serve.scorer.DomainScorer` over the bundle
        returns exactly the scores ``detector.decision_scores`` would.
        Thin delegate: the detector is itself a facade over an artifact
        store, so this just forwards to :meth:`from_artifacts`.
        """
        return cls.from_artifacts(
            detector.artifacts,
            detector.config,
            scaler=scaler,
            metrics=metrics,
            created_at=created_at,
        )

    @property
    def dimension(self) -> int:
        """Feature dimension the classifier expects."""
        return int(self.features.shape[1])

    def decision_scores(self, matrix: np.ndarray) -> np.ndarray:
        """d(x) for pre-assembled feature rows (scaled if applicable)."""
        if self.scaler is not None:
            matrix = self.scaler.transform(matrix)
        return self.classifier.decision_function(matrix)

    def save(self, directory: str | Path) -> Path:
        """Write the bundle under ``directory``; returns the directory.

        The manifest (with artifact checksums) is written last, so an
        interrupted save leaves a directory that :meth:`load` rejects
        instead of a silently truncated model.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_classifier(self.classifier, directory / _CLASSIFIER_FILE)
        np.savez_compressed(
            directory / _FEATURES_FILE,
            features=self.features,
            domains=np.array(self.domains, dtype=np.str_),
        )
        artifacts = [_CLASSIFIER_FILE, _FEATURES_FILE]
        if self.scaler is not None:
            save_scaler(self.scaler, directory / _SCALER_FILE)
            artifacts.append(_SCALER_FILE)
        self.manifest.files = {
            name: _sha256(directory / name) for name in artifacts
        }
        (directory / MANIFEST_FILENAME).write_text(
            self.manifest.to_json(), encoding="utf-8"
        )
        return directory

    @staticmethod
    def load(directory: str | Path) -> "ModelBundle":
        """Read and integrity-check a bundle written by :meth:`save`."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise DatasetError(f"no bundle manifest under {directory}")
        manifest = BundleManifest.from_json(
            manifest_path.read_text(encoding="utf-8")
        )
        if manifest.schema_version != BUNDLE_SCHEMA_VERSION:
            raise DatasetError(
                "unsupported bundle schema version "
                f"{manifest.schema_version}"
            )
        for name, expected in manifest.files.items():
            artifact = directory / name
            if not artifact.is_file():
                raise ArtifactIntegrityError(
                    f"bundle artifact missing: {artifact}"
                )
            actual = _sha256(artifact)
            if actual != expected:
                raise ArtifactIntegrityError(
                    f"checksum mismatch for {artifact}: "
                    f"manifest {expected[:12]}..., file {actual[:12]}..."
                )
        classifier = load_classifier(directory / _CLASSIFIER_FILE)
        with np.load(directory / _FEATURES_FILE) as archive:
            features = np.asarray(archive["features"], dtype=np.float64)
            domains = [str(d) for d in archive["domains"]]
        scaler: StandardScaler | None = None
        if _SCALER_FILE in manifest.files:
            scaler = load_scaler(directory / _SCALER_FILE)
        return ModelBundle(
            classifier=classifier,
            features=features,
            domains=domains,
            scaler=scaler,
            manifest=manifest,
        )
