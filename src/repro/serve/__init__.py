"""Model serving: artifact bundles, a versioned registry, and the
online scoring service.

The paper's system is an operational one — train periodically, answer
verdict queries continuously. This package is that deployment surface:

* :class:`ModelBundle` packages a trained classifier + feature matrix +
  manifest as a checksummed, pickle-free artifact directory;
* :class:`ModelRegistry` keeps versioned bundles with atomic publish
  and lock-free hot swap of the active version;
* :class:`DomainScorer` answers single/batch verdict queries from a
  bundle (vectorized, LRU-cached, explicit unknown-domain policy);
* :class:`ScoringService` exposes it all over HTTP with health checks,
  metrics, and zero-downtime reload (``repro-dns serve``);
* :class:`AdmissionController` bounds in-flight scoring work and sheds
  excess load (429 + ``Retry-After``) with per-request deadlines;
* :class:`MicroBatcher` coalesces concurrent small requests into one
  vectorized scoring call;
* :class:`FaultInjector` provides deterministic, test-only latency and
  error injection so the degradation paths stay exercised.

See ``docs/serving.md`` for the bundle format, endpoint reference, and
the operating-under-load runbook.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionResult,
    Deadline,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.bundle import (
    BUNDLE_SCHEMA_VERSION,
    BundleManifest,
    ModelBundle,
)
from repro.serve.faults import FAULT_SITES, FaultInjector
from repro.serve.registry import ModelRegistry
from repro.serve.scorer import UNKNOWN_POLICIES, DomainScorer, Verdict
from repro.serve.service import ScoringService, ServiceConfig

__all__ = [
    "AdmissionController",
    "AdmissionResult",
    "BUNDLE_SCHEMA_VERSION",
    "BundleManifest",
    "Deadline",
    "DomainScorer",
    "FAULT_SITES",
    "FaultInjector",
    "MicroBatcher",
    "ModelBundle",
    "ModelRegistry",
    "ScoringService",
    "ServiceConfig",
    "UNKNOWN_POLICIES",
    "Verdict",
]
