"""Micro-batching: coalesce concurrent small score requests into one
vectorized call.

The scorer's cost model strongly favors batches — one vocabulary
gather, one BLAS decision-function call — but production traffic
arrives as many concurrent *single-domain* requests. The
:class:`MicroBatcher` bridges the two shapes: concurrent
:meth:`~MicroBatcher.submit` calls within a small window (default 2 ms)
are concatenated, flushed through **one** backend call, and the results
sliced back to each caller in submission order.

Design (leader/follower, no background thread):

* the first submitter to find no open batch becomes the **leader**: it
  waits up to ``window_seconds`` (cut short the moment the batch hits
  ``max_batch`` domains), seals the batch, runs the flush callable, and
  publishes the results;
* later submitters are **followers**: they append their domains and
  block on the batch's completion event;
* a flush failure propagates to *every* caller in the batch — no caller
  can silently receive another request's verdicts.

Because the flush receives the concatenation in arrival order and each
caller gets back exactly its contiguous slice, micro-batched results
are the same bytes a direct ``score_batch`` call over that
concatenation would produce — batching changes latency shape, never
scores.

The flush callable returns ``(context, results)`` where ``results`` has
one entry per submitted domain; ``context`` rides along unchanged (the
scoring service uses it for the model version the batch was scored on,
so every caller in a batch reports a consistent version even across a
concurrent hot reload).
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, Sequence, TypeVar

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["MicroBatcher"]

C = TypeVar("C")
R = TypeVar("R")

#: Bucket bounds for the batch-size histogram (domains per flush).
_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class _Batch(Generic[C, R]):
    """One forming/in-flight batch (internal)."""

    __slots__ = ("domains", "full", "done", "context", "results", "error")

    def __init__(self) -> None:
        self.domains: list[str] = []
        self.full = threading.Event()
        self.done = threading.Event()
        self.context: C | None = None
        self.results: Sequence[R] | None = None
        self.error: BaseException | None = None


class MicroBatcher(Generic[C, R]):
    """Coalesces concurrent submissions into bounded batched flushes.

    Args:
        flush: Called with the concatenated domain list of one sealed
            batch; must return ``(context, results)`` with exactly one
            result per domain. Exceptions propagate to every caller in
            the batch.
        window_seconds: How long the leader holds the batch open for
            followers (> 0).
        max_batch: Seal-and-flush threshold; a batch never exceeds it
            unless a *single* submission is already larger (that
            submission flushes alone, still in one call).
        metrics: Registry for batching metrics (process default when
            omitted).
    """

    def __init__(
        self,
        flush: Callable[[list[str]], tuple[C, Sequence[R]]],
        window_seconds: float = 0.002,
        max_batch: int = 256,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush = flush
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._open: _Batch[C, R] | None = None
        registry = metrics if metrics is not None else default_registry()
        self._flushes = registry.counter("serve.batch.flushes")
        self._coalesced = registry.counter("serve.batch.coalesced")
        self._size_histogram = registry.histogram(
            "serve.batch.size", buckets=_SIZE_BUCKETS
        )

    def submit(self, domains: Sequence[str]) -> tuple[C, list[R]]:
        """Score ``domains`` through the current (or a new) batch.

        Blocks until the batch containing these domains has flushed;
        returns the flush context and this submission's results, in
        input order.
        """
        if not domains:
            raise ValueError("submit() requires at least one domain")
        with self._lock:
            batch = self._open
            if batch is None:
                batch = _Batch()
                self._open = batch
                leader = True
            else:
                leader = False
                self._coalesced.inc()
            offset = len(batch.domains)
            batch.domains.extend(domains)
            if len(batch.domains) >= self.max_batch:
                # Seal: wake the leader early and stop new joins.
                batch.full.set()
                if self._open is batch:
                    self._open = None
        if leader:
            batch.full.wait(self.window_seconds)
            with self._lock:
                # No appends can happen once the batch leaves _open.
                if self._open is batch:
                    self._open = None
            try:
                context, results = self._flush(batch.domains)
                if len(results) != len(batch.domains):
                    raise RuntimeError(
                        f"flush returned {len(results)} results for "
                        f"{len(batch.domains)} domains"
                    )
                batch.context = context
                batch.results = results
                self._flushes.inc()
                self._size_histogram.observe(len(batch.domains))
            except BaseException as exc:
                batch.error = exc
            finally:
                batch.done.set()
        else:
            batch.done.wait()
        if batch.error is not None:
            raise batch.error
        results_all = batch.results
        assert results_all is not None  # set whenever error is None
        # batch.context is C | None only because the slot predates the
        # flush; an error-free batch always carries the flush's context.
        return batch.context, list(  # type: ignore[return-value]
            results_all[offset:offset + len(domains)]
        )
