"""HTTP scoring daemon over a model registry.

A :class:`ScoringService` wraps a :class:`~repro.serve.registry.
ModelRegistry` plus the active :class:`~repro.serve.scorer.DomainScorer`
behind a ``ThreadingHTTPServer``:

============================  =========================================
``POST /v1/score``            score one domain or a batch (JSON in/out)
``GET /healthz``              liveness — 200 while the process runs
``GET /readyz``               readiness — 200 once a model is loaded
``GET /metrics``              JSON snapshot of the metrics registry
``POST /admin/reload``        swap to the latest (or a given) version
============================  =========================================

Operational guarantees:

* requests are bounded (``Content-Length`` required, capped at
  ``max_request_bytes``; batches capped at ``max_batch_size``);
* each connection gets a socket timeout, so a stalled client cannot pin
  a handler thread forever;
* reload is zero-downtime — the new scorer is swapped in with a single
  reference assignment, and requests already in flight finish on the
  model they started with;
* :meth:`ScoringService.stop` shuts down gracefully: the accept loop
  exits first, then in-flight handler threads are joined.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.errors import ArtifactIntegrityError, DatasetError
from repro.obs.export import snapshot_to_dict
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.serve.registry import ModelRegistry
from repro.serve.scorer import UNKNOWN_POLICIES, DomainScorer, Verdict

__all__ = ["ServiceConfig", "ScoringService"]

_log = get_logger(__name__)


@dataclass(slots=True)
class ServiceConfig:
    """Scoring-service knobs.

    Attributes:
        host: Bind address (loopback by default; expose deliberately).
        port: Bind port; 0 asks the kernel for an ephemeral one.
        max_request_bytes: Reject request bodies larger than this (413).
        request_timeout_seconds: Per-connection socket timeout.
        cache_size: Verdict LRU size for the active scorer.
        unknown_policy: Unknown-domain policy (see
            :data:`~repro.serve.scorer.UNKNOWN_POLICIES`).
        max_batch_size: Most domains accepted in one ``/v1/score`` call.
    """

    host: str = "127.0.0.1"
    port: int = 8053
    max_request_bytes: int = 1 << 20
    request_timeout_seconds: float = 30.0
    cache_size: int = 4096
    unknown_policy: str = "zero"
    max_batch_size: int = 10_000

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range settings."""
        if self.port < 0:
            raise ValueError("port must be >= 0")
        if self.max_request_bytes < 1:
            raise ValueError("max_request_bytes must be positive")
        if self.request_timeout_seconds <= 0:
            raise ValueError("request_timeout_seconds must be positive")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.unknown_policy not in UNKNOWN_POLICIES:
            raise ValueError(
                f"unknown_policy must be one of {UNKNOWN_POLICIES}"
            )


@dataclass(frozen=True, slots=True)
class _ActiveModel:
    """The hot-swappable unit: one version with its scorer."""

    version: int
    scorer: DomainScorer


class ScoringService:
    """Online scoring over the bundles published to a registry.

    Construction loads the registry's published version when one exists;
    otherwise the service starts unready (``/readyz`` 503) and becomes
    ready after the first successful :meth:`reload`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.config.validate()
        self._metrics = metrics if metrics is not None else default_registry()
        self._active: _ActiveModel | None = None
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        if registry.latest_version() is not None:
            self.reload()

    # ------------------------------------------------------------------
    # Model lifecycle

    @property
    def ready(self) -> bool:
        """Whether a model is loaded and scoring can be served."""
        return self._active is not None

    @property
    def active_version(self) -> int | None:
        """Version currently answering queries, or ``None``."""
        snapshot = self._active
        return snapshot.version if snapshot is not None else None

    def reload(self, version: int | None = None) -> int:
        """Load ``version`` (default: the registry's published one) and
        swap it in without dropping in-flight requests."""
        resolved = version if version is not None else (
            self.registry.latest_version()
        )
        if resolved is None:
            raise DatasetError(
                f"no published model versions under {self.registry.root}"
            )
        bundle = self.registry.load(resolved)
        scorer = DomainScorer(
            bundle,
            cache_size=self.config.cache_size,
            unknown_policy=self.config.unknown_policy,
            metrics=self._metrics,
        )
        previous = self.active_version
        # The swap: one reference assignment. Handler threads snapshot
        # self._active once per request, so they never see a torn pair.
        self._active = _ActiveModel(version=resolved, scorer=scorer)
        self._metrics.gauge("serve.model_version").set(resolved)
        self._metrics.counter("serve.reloads").inc()
        _log.info(
            "model_reloaded",
            version=resolved,
            previous_version=previous,
            domains=scorer.known_domains,
        )
        return resolved

    # ------------------------------------------------------------------
    # Server lifecycle

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background thread; returns (host, port).

        With ``config.port == 0`` the returned port is the ephemeral one
        the kernel assigned.
        """
        if self._server is not None:
            raise RuntimeError("service is already running")
        server = ThreadingHTTPServer(
            (self.config.host, self.config.port), _build_handler(self)
        )
        # Graceful shutdown: wait for in-flight handler threads on close
        # (a stalled client is bounded by the per-connection timeout).
        server.daemon_threads = False
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        host, port = server.server_address[:2]
        _log.info(
            "service_started",
            host=str(host),
            port=int(port),
            model_version=self.active_version,
        )
        return str(host), int(port)

    def stop(self) -> None:
        """Stop accepting, finish in-flight requests, release the port."""
        server = self._server
        if server is None:
            return
        server.shutdown()
        server.server_close()
        self._server = None
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.config.request_timeout_seconds)
            self._thread = None
        _log.info("service_stopped")

    def __enter__(self) -> "ScoringService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)

    def handle_score(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Score request -> (HTTP status, response body)."""
        active = self._active  # one snapshot: reloads can't tear it
        if active is None:
            return 503, {"error": "no model loaded"}
        raw = payload.get("domains")
        if raw is None:
            single = payload.get("domain")
            if single is None:
                return 400, {"error": 'expected "domain" or "domains"'}
            raw = [single]
        if not isinstance(raw, list) or not raw:
            return 400, {"error": '"domains" must be a non-empty list'}
        if len(raw) > self.config.max_batch_size:
            return 413, {
                "error": f"batch of {len(raw)} exceeds "
                f"max_batch_size={self.config.max_batch_size}"
            }
        if not all(isinstance(d, str) and d for d in raw):
            return 400, {"error": "every domain must be a non-empty string"}
        verdicts = active.scorer.score_batch(raw)
        return 200, {
            "model_version": active.version,
            "results": [_verdict_to_json(v) for v in verdicts],
        }

    def handle_reload(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Reload request -> (HTTP status, response body)."""
        version = payload.get("version")
        if version is not None and not isinstance(version, int):
            return 400, {"error": '"version" must be an integer'}
        previous = self.active_version
        try:
            resolved = self.reload(version)
        except (DatasetError, ArtifactIntegrityError) as exc:
            return 409, {"error": str(exc)}
        return 200, {
            "model_version": resolved,
            "previous_version": previous,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The /metrics payload."""
        return snapshot_to_dict(self._metrics)


def _verdict_to_json(verdict: Verdict) -> dict[str, Any]:
    """JSON-safe verdict (NaN — rejected unknown — becomes null)."""
    score: float | None = verdict.score
    if score is not None and math.isnan(score):
        score = None
    return {
        "domain": verdict.domain,
        "score": score,
        "malicious": verdict.malicious,
        "known": verdict.known,
    }


def _build_handler(service: ScoringService) -> type[BaseHTTPRequestHandler]:
    """A request-handler class closed over ``service``."""

    request_histogram = service._metrics.histogram("serve.request.seconds")
    request_counter = service._metrics.counter("serve.requests")
    error_counter = service._metrics.counter("serve.errors")

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"
        # Per-connection socket timeout: a stalled client gets cut off
        # instead of pinning a handler thread.
        timeout = service.config.request_timeout_seconds

        def log_message(self, format: str, *args: Any) -> None:
            _log.debug("http_access", message=format % args)

        # -- plumbing ---------------------------------------------------

        def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if status >= 400:
                # Error paths may not have drained the request body;
                # closing keeps the framing honest under HTTP/1.1.
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)
            request_counter.inc()
            if status >= 400:
                error_counter.inc()

        def _read_json_body(self) -> Mapping[str, Any] | None:
            """Parsed body, or ``None`` after an error response."""
            length_header = self.headers.get("Content-Length")
            if length_header is None:
                self._send_json(411, {"error": "Content-Length required"})
                return None
            try:
                length = int(length_header)
            except ValueError:
                self._send_json(400, {"error": "bad Content-Length"})
                return None
            if length < 0:
                self._send_json(400, {"error": "bad Content-Length"})
                return None
            if length > service.config.max_request_bytes:
                self._send_json(
                    413,
                    {
                        "error": f"request body over "
                        f"{service.config.max_request_bytes} bytes"
                    },
                )
                return None
            body = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(body or b"{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._send_json(400, {"error": "request body is not JSON"})
                return None
            if not isinstance(payload, dict):
                self._send_json(
                    400, {"error": "request body must be a JSON object"}
                )
                return None
            return payload

        # -- endpoints --------------------------------------------------

        def do_GET(self) -> None:
            started = time.perf_counter()
            try:
                if self.path == "/healthz":
                    self._send_json(200, {"status": "ok"})
                elif self.path == "/readyz":
                    version = service.active_version
                    if version is None:
                        self._send_json(
                            503, {"ready": False, "error": "no model loaded"}
                        )
                    else:
                        self._send_json(
                            200, {"ready": True, "model_version": version}
                        )
                elif self.path == "/metrics":
                    self._send_json(200, service.metrics_snapshot())
                else:
                    self._send_json(
                        404, {"error": f"unknown path {self.path}"}
                    )
            finally:
                request_histogram.observe(time.perf_counter() - started)

        def do_POST(self) -> None:
            started = time.perf_counter()
            try:
                if self.path == "/v1/score":
                    payload = self._read_json_body()
                    if payload is None:
                        return
                    status, response = service.handle_score(payload)
                    self._send_json(status, response)
                elif self.path == "/admin/reload":
                    payload = self._read_json_body()
                    if payload is None:
                        return
                    status, response = service.handle_reload(payload)
                    self._send_json(status, response)
                else:
                    self._send_json(
                        404, {"error": f"unknown path {self.path}"}
                    )
            finally:
                request_histogram.observe(time.perf_counter() - started)

    return Handler
