"""HTTP scoring daemon over a model registry.

A :class:`ScoringService` wraps a :class:`~repro.serve.registry.
ModelRegistry` plus the active :class:`~repro.serve.scorer.DomainScorer`
behind a ``ThreadingHTTPServer``:

============================  =========================================
``POST /v1/score``            score one domain or a batch (JSON in/out)
``GET /healthz``              liveness — 200 while the process runs
``GET /readyz``               readiness — 200 once a model is loaded
``GET /metrics``              JSON snapshot of the metrics registry
``POST /admin/reload``        swap to the latest (or a given) version
============================  =========================================

Operational guarantees:

* requests are bounded (``Content-Length`` required, capped at
  ``max_request_bytes``; batches capped at ``max_batch_size``);
* scoring concurrency is bounded by an
  :class:`~repro.serve.admission.AdmissionController`: at most
  ``max_inflight`` requests score at once, at most ``queue_depth`` wait
  for a slot, excess load is shed with ``429`` + ``Retry-After``, and a
  request that cannot be served within ``deadline_seconds`` gets a
  ``503`` instead of a stale answer;
* with ``batch_window_seconds > 0`` concurrent small requests coalesce
  through a :class:`~repro.serve.batcher.MicroBatcher` into one
  vectorized ``score_batch`` call (same bytes, better throughput);
* failures degrade instead of cascading: scorer exceptions come back as
  structured JSON ``500`` bodies, reload failures retry with backoff
  and leave the last-good model serving, and a client that disconnects
  mid-response is counted (``serve.client_disconnects``) rather than
  dumped as a traceback;
* each connection gets a socket timeout, so a stalled client cannot pin
  a handler thread forever;
* reload is zero-downtime — the new scorer is swapped in with a single
  reference assignment (serialized by a lock so concurrent reloads
  cannot interleave load-and-swap), and requests already in flight
  finish on the model they started with;
* :meth:`ScoringService.stop` shuts down gracefully: the accept loop
  exits first, then in-flight handler threads are joined.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.bundle import ModelBundle

from repro.errors import ArtifactIntegrityError, DatasetError
from repro.obs.export import snapshot_to_dict
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.serve.admission import (
    DEADLINE,
    SHED,
    AdmissionController,
    Deadline,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.faults import FaultInjector
from repro.serve.registry import ModelRegistry
from repro.serve.scorer import UNKNOWN_POLICIES, DomainScorer, Verdict

__all__ = ["ServiceConfig", "ScoringService"]

_log = get_logger(__name__)


@dataclass(slots=True)
class ServiceConfig:
    """Scoring-service knobs.

    Attributes:
        host: Bind address (loopback by default; expose deliberately).
        port: Bind port; 0 asks the kernel for an ephemeral one.
        max_request_bytes: Reject request bodies larger than this (413).
        request_timeout_seconds: Per-connection socket timeout.
        cache_size: Verdict LRU size for the active scorer.
        unknown_policy: Unknown-domain policy (see
            :data:`~repro.serve.scorer.UNKNOWN_POLICIES`).
        max_batch_size: Most domains accepted in one ``/v1/score`` call.
        max_inflight: Scoring requests allowed to execute concurrently.
        queue_depth: Scoring requests allowed to wait for a slot before
            excess load is shed with 429.
        deadline_seconds: Per-request budget; a request still queued (or
            not yet scored) when it expires gets a 503.
        batch_window_seconds: Micro-batching window — concurrent
            ``/v1/score`` requests arriving within it are scored in one
            vectorized call. 0 (the default) disables batching.
        batch_max_size: Domains per micro-batch before an early flush.
        reload_retries: Extra load attempts before a reload gives up
            and the last-good model stays active.
        reload_backoff_seconds: Base sleep between reload attempts
            (doubles per retry).
    """

    host: str = "127.0.0.1"
    port: int = 8053
    max_request_bytes: int = 1 << 20
    request_timeout_seconds: float = 30.0
    cache_size: int = 4096
    unknown_policy: str = "zero"
    max_batch_size: int = 10_000
    max_inflight: int = 8
    queue_depth: int = 32
    deadline_seconds: float = 5.0
    batch_window_seconds: float = 0.0
    batch_max_size: int = 256
    reload_retries: int = 2
    reload_backoff_seconds: float = 0.05

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range settings."""
        if not self.host or not self.host.strip():
            raise ValueError("host must be a non-blank bind address")
        if self.port < 0:
            raise ValueError("port must be >= 0")
        if self.port > 65535:
            raise ValueError("port must be <= 65535")
        if self.max_request_bytes < 1:
            raise ValueError("max_request_bytes must be positive")
        if self.request_timeout_seconds <= 0:
            raise ValueError("request_timeout_seconds must be positive")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.unknown_policy not in UNKNOWN_POLICIES:
            raise ValueError(
                f"unknown_policy must be one of {UNKNOWN_POLICIES}"
            )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be >= 0")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be positive")
        if self.reload_retries < 0:
            raise ValueError("reload_retries must be >= 0")
        if self.reload_backoff_seconds < 0:
            raise ValueError("reload_backoff_seconds must be >= 0")


@dataclass(frozen=True, slots=True)
class _ActiveModel:
    """The hot-swappable unit: one version with its scorer."""

    version: int
    scorer: DomainScorer


class ScoringService:
    """Online scoring over the bundles published to a registry.

    Construction loads the registry's published version when one exists;
    otherwise the service starts unready (``/readyz`` 503) and becomes
    ready after the first successful :meth:`reload`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.config.validate()
        self._metrics = metrics if metrics is not None else default_registry()
        #: Test-only fault hooks (inert unless a test arms a site).
        self.faults = (
            faults if faults is not None else FaultInjector(self._metrics)
        )
        self._admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            queue_depth=self.config.queue_depth,
            metrics=self._metrics,
        )
        self._batcher: MicroBatcher[int, Verdict] | None = None
        if self.config.batch_window_seconds > 0:
            self._batcher = MicroBatcher(
                self._score_flush,
                window_seconds=self.config.batch_window_seconds,
                max_batch=self.config.batch_max_size,
                metrics=self._metrics,
            )
        # Serializes load-and-swap: without it two concurrent reloads
        # can interleave so the older bundle wins the assignment while
        # the gauge reports the newer one.
        self._reload_lock = threading.Lock()
        self._active: _ActiveModel | None = None
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        if registry.latest_version() is not None:
            self.reload()

    # ------------------------------------------------------------------
    # Model lifecycle

    @property
    def ready(self) -> bool:
        """Whether a model is loaded and scoring can be served."""
        return self._active is not None

    @property
    def active_version(self) -> int | None:
        """Version currently answering queries, or ``None``."""
        snapshot = self._active
        return snapshot.version if snapshot is not None else None

    def reload(self, version: int | None = None) -> int:
        """Load ``version`` (default: the registry's published one) and
        swap it in without dropping in-flight requests.

        The whole load-and-swap is serialized by a lock so concurrent
        reloads cannot interleave (an older version winning the final
        assignment while the gauge reports the newer one). Load
        failures retry ``config.reload_retries`` times with exponential
        backoff; if every attempt fails with a corrupt or missing
        bundle the last-good model stays active — the service keeps
        answering on the previous version — and the final error
        propagates to the caller (``serve.reload_failures`` counts each
        failed attempt).
        """
        with self._reload_lock:
            resolved = version if version is not None else (
                self.registry.latest_version()
            )
            if resolved is None:
                raise DatasetError(
                    f"no published model versions under {self.registry.root}"
                )
            bundle = self._load_with_retry(resolved)
            scorer = DomainScorer(
                bundle,
                cache_size=self.config.cache_size,
                unknown_policy=self.config.unknown_policy,
                metrics=self._metrics,
            )
            previous = self.active_version
            # The swap: one reference assignment. Handler threads
            # snapshot self._active once per request, so they never see
            # a torn pair.
            self._active = _ActiveModel(version=resolved, scorer=scorer)
            self._metrics.gauge("serve.model_version").set(resolved)
            self._metrics.counter("serve.reloads").inc()
            _log.info(
                "model_reloaded",
                version=resolved,
                previous_version=previous,
                domains=scorer.known_domains,
            )
            return resolved

    def _load_with_retry(self, version: int) -> "ModelBundle":
        """Load a bundle, retrying torn/missing artifacts with backoff.

        Raises the last error once attempts are exhausted; the caller's
        active model is untouched, so the service degrades to "keep
        serving the previous version" rather than going unready.
        """
        attempts = self.config.reload_retries + 1
        for attempt in range(1, attempts + 1):
            try:
                self.faults.fire("registry.load")
                return self.registry.load(version)
            except (ArtifactIntegrityError, DatasetError) as exc:
                self._metrics.counter("serve.reload_failures").inc()
                _log.warning(
                    "reload_attempt_failed",
                    version=version,
                    attempt=attempt,
                    attempts=attempts,
                    active_version=self.active_version,
                    error=str(exc),
                )
                if attempt == attempts:
                    raise
                backoff = self.config.reload_backoff_seconds
                if backoff > 0:
                    time.sleep(backoff * 2 ** (attempt - 1))
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Server lifecycle

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background thread; returns (host, port).

        With ``config.port == 0`` the returned port is the ephemeral one
        the kernel assigned.
        """
        if self._server is not None:
            raise RuntimeError("service is already running")
        server = _quiet_server(self)(
            (self.config.host, self.config.port), _build_handler(self)
        )
        # Graceful shutdown: wait for in-flight handler threads on close
        # (a stalled client is bounded by the per-connection timeout).
        server.daemon_threads = False
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        host, port = server.server_address[:2]
        _log.info(
            "service_started",
            host=str(host),
            port=int(port),
            model_version=self.active_version,
        )
        return str(host), int(port)

    def stop(self) -> None:
        """Stop accepting, finish in-flight requests, release the port."""
        server = self._server
        if server is None:
            return
        server.shutdown()
        server.server_close()
        self._server = None
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.config.request_timeout_seconds)
            self._thread = None
        _log.info("service_stopped")

    def __enter__(self) -> "ScoringService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)

    def handle_score(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Score request -> (HTTP status, response body, extra headers).

        Validation runs before admission (a malformed request must not
        consume a scoring slot); the scoring work itself is gated by
        the admission controller and bounded by the per-request
        deadline, and scorer failures come back as structured 500s.
        """
        if self._active is None:
            return 503, {"error": "no model loaded"}, {}
        raw = payload.get("domains")
        if raw is None:
            single = payload.get("domain")
            if single is None:
                return 400, {"error": 'expected "domain" or "domains"'}, {}
            raw = [single]
        if not isinstance(raw, list) or not raw:
            return 400, {"error": '"domains" must be a non-empty list'}, {}
        if len(raw) > self.config.max_batch_size:
            return 413, {
                "error": f"batch of {len(raw)} exceeds "
                f"max_batch_size={self.config.max_batch_size}"
            }, {}
        if not all(isinstance(d, str) and d for d in raw):
            return 400, {
                "error": "every domain must be a non-empty string"
            }, {}
        deadline = Deadline.after(self.config.deadline_seconds)
        admission = self._admission.try_acquire(deadline)
        if admission.status == SHED:
            retry_after = admission.retry_after_seconds
            return 429, {
                "error": "overloaded: in-flight and queue limits reached",
                "retry_after_seconds": retry_after,
            }, {"Retry-After": str(retry_after)}
        if admission.status == DEADLINE:
            return 503, {
                "error": f"deadline of {self.config.deadline_seconds}s "
                "exceeded while queued"
            }, {}
        started = time.perf_counter()
        try:
            if deadline.expired:
                self._metrics.counter("serve.deadline_exceeded").inc()
                return 503, {
                    "error": f"deadline of {self.config.deadline_seconds}s "
                    "exceeded before scoring"
                }, {}
            try:
                version, verdicts = self._score(raw)
            except Exception as exc:
                # Graceful degradation: a scorer fault is a structured
                # JSON 500 (counted via serve.errors in _send_json and
                # serve.scorer_failures here), never a reset connection.
                self._metrics.counter("serve.scorer_failures").inc()
                _log.error(
                    "scoring_failed",
                    domains=len(raw),
                    error=f"{type(exc).__name__}: {exc}",
                )
                return 500, {
                    "error": f"scoring failed: {exc}"
                }, {}
            return 200, {
                "model_version": version,
                "results": [_verdict_to_json(v) for v in verdicts],
            }, {}
        finally:
            self._admission.release(time.perf_counter() - started)

    def _score(self, domains: list[str]) -> tuple[int, list[Verdict]]:
        """Score through the micro-batcher when one is configured."""
        batcher = self._batcher
        if batcher is not None:
            version, sliced = batcher.submit(domains)
            return version, sliced
        return self._score_flush(list(domains))

    def _score_flush(self, domains: list[str]) -> tuple[int, list[Verdict]]:
        """One vectorized scoring pass on a consistent model snapshot."""
        active = self._active
        if active is None:
            raise DatasetError("no model loaded")
        self.faults.fire("scorer.score_batch")
        return active.version, active.scorer.score_batch(domains)

    def handle_reload(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Reload request -> (HTTP status, response body, headers)."""
        version = payload.get("version")
        if version is not None and not isinstance(version, int):
            return 400, {"error": '"version" must be an integer'}, {}
        previous = self.active_version
        try:
            resolved = self.reload(version)
        except (DatasetError, ArtifactIntegrityError) as exc:
            return 409, {
                "error": str(exc),
                "active_version": self.active_version,
            }, {}
        return 200, {
            "model_version": resolved,
            "previous_version": previous,
        }, {}

    def metrics_snapshot(self) -> dict[str, Any]:
        """The /metrics payload."""
        return snapshot_to_dict(self._metrics)


def _verdict_to_json(verdict: Verdict) -> dict[str, Any]:
    """JSON-safe verdict (NaN — rejected unknown — becomes null)."""
    score: float | None = verdict.score
    if score is not None and math.isnan(score):
        score = None
    return {
        "domain": verdict.domain,
        "score": score,
        "malicious": verdict.malicious,
        "known": verdict.known,
    }


def _quiet_server(service: ScoringService) -> type[ThreadingHTTPServer]:
    """A server class whose error hook doesn't spray tracebacks.

    ``socketserver`` prints unhandled handler exceptions to stderr; for
    a network service the common case is a client that went away
    mid-conversation, which is routine operation, not a bug. Real
    handler bugs are answered with a JSON 500 inside the handler; this
    hook only logs whatever still escapes.
    """

    disconnect_counter = service._metrics.counter("serve.client_disconnects")

    class QuietServer(ThreadingHTTPServer):
        # socketserver's default listen backlog is 5: a burst of
        # concurrent clients overflows the accept queue and the kernel
        # resets the excess before the service can answer at all. Load
        # beyond capacity must reach the admission controller and get
        # an orderly 429 instead.
        request_queue_size = 128

        def handle_error(
            self, request: Any, client_address: Any
        ) -> None:
            exc = sys.exc_info()[1]
            if isinstance(
                exc, (BrokenPipeError, ConnectionResetError, TimeoutError)
            ):
                # Dead/stalled client detected at connection teardown
                # (e.g. the final flush); not already counted by the
                # per-response path, so count it here.
                disconnect_counter.inc()
                _log.debug(
                    "client_disconnected",
                    client=str(client_address),
                    error=type(exc).__name__,
                )
                return
            _log.error(
                "connection_error",
                client=str(client_address),
                error=f"{type(exc).__name__}: {exc}",
            )

    return QuietServer


def _build_handler(service: ScoringService) -> type[BaseHTTPRequestHandler]:
    """A request-handler class closed over ``service``."""

    request_histogram = service._metrics.histogram("serve.request.seconds")
    request_counter = service._metrics.counter("serve.requests")
    error_counter = service._metrics.counter("serve.errors")
    disconnect_counter = service._metrics.counter("serve.client_disconnects")

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"
        # Per-connection socket timeout: a stalled client gets cut off
        # instead of pinning a handler thread.
        timeout = service.config.request_timeout_seconds
        # Whether the current request already got a response (keeps the
        # catch-all 500 path from writing a second response).
        _responded = False

        def log_message(self, format: str, *args: Any) -> None:
            _log.debug("http_access", message=format % args)

        # -- plumbing ---------------------------------------------------

        def _send_json(
            self,
            status: int,
            payload: Mapping[str, Any],
            headers: Mapping[str, str] | None = None,
        ) -> None:
            body = json.dumps(payload).encode("utf-8")
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                if status >= 400:
                    # Error paths may not have drained the request body;
                    # closing keeps the framing honest under HTTP/1.1.
                    self.send_header("Connection", "close")
                    self.close_connection = True
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError) as exc:
                # The client hung up mid-response: routine under load,
                # not an error — counted separately so serve.requests /
                # serve.errors keep meaning "responses actually sent".
                self._responded = True
                self.close_connection = True
                disconnect_counter.inc()
                _log.debug(
                    "client_disconnected",
                    path=self.path,
                    status=status,
                    error=type(exc).__name__,
                )
                return
            self._responded = True
            request_counter.inc()
            if status >= 400:
                error_counter.inc()

        def _read_json_body(self) -> Mapping[str, Any] | None:
            """Parsed body, or ``None`` after an error response."""
            length_header = self.headers.get("Content-Length")
            if length_header is None:
                self._send_json(411, {"error": "Content-Length required"})
                return None
            try:
                length = int(length_header)
            except ValueError:
                self._send_json(400, {"error": "bad Content-Length"})
                return None
            if length < 0:
                self._send_json(400, {"error": "bad Content-Length"})
                return None
            if length > service.config.max_request_bytes:
                self._send_json(
                    413,
                    {
                        "error": f"request body over "
                        f"{service.config.max_request_bytes} bytes"
                    },
                )
                return None
            body = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(body or b"{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._send_json(400, {"error": "request body is not JSON"})
                return None
            if not isinstance(payload, dict):
                self._send_json(
                    400, {"error": "request body must be a JSON object"}
                )
                return None
            return payload

        # -- endpoints --------------------------------------------------

        def _guarded(self, dispatch: Any) -> None:
            """Run one endpoint dispatch with the degradation backstop.

            Any exception that escapes an endpoint becomes a structured
            JSON 500 (when no response has been written yet) instead of
            propagating into socketserver and resetting the connection;
            client disconnects are counted, never raised.
            """
            started = time.perf_counter()
            self._responded = False
            try:
                dispatch()
            except (BrokenPipeError, ConnectionResetError) as exc:
                # Disconnect while reading the request body (the
                # mid-write case is absorbed inside _send_json).
                self.close_connection = True
                disconnect_counter.inc()
                _log.debug(
                    "client_disconnected",
                    path=self.path,
                    error=type(exc).__name__,
                )
            except Exception as exc:
                _log.error(
                    "handler_error",
                    path=self.path,
                    error=f"{type(exc).__name__}: {exc}",
                )
                if not self._responded:
                    try:
                        self._send_json(
                            500,
                            {
                                "error": "internal error: "
                                f"{type(exc).__name__}: {exc}"
                            },
                        )
                    except OSError:  # pragma: no cover - dead socket
                        self.close_connection = True
            finally:
                request_histogram.observe(time.perf_counter() - started)

        def do_GET(self) -> None:
            self._guarded(self._dispatch_get)

        def _dispatch_get(self) -> None:
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/readyz":
                version = service.active_version
                if version is None:
                    self._send_json(
                        503, {"ready": False, "error": "no model loaded"}
                    )
                else:
                    self._send_json(
                        200, {"ready": True, "model_version": version}
                    )
            elif self.path == "/metrics":
                self._send_json(200, service.metrics_snapshot())
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            self._guarded(self._dispatch_post)

        def _dispatch_post(self) -> None:
            if self.path == "/v1/score":
                payload = self._read_json_body()
                if payload is None:
                    return
                status, response, headers = service.handle_score(payload)
                self._send_json(status, response, headers)
            elif self.path == "/admin/reload":
                payload = self._read_json_body()
                if payload is None:
                    return
                status, response, headers = service.handle_reload(payload)
                self._send_json(status, response, headers)
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})

    return Handler
