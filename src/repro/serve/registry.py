"""Versioned on-disk model registry with atomic publish and hot swap.

A registry root holds numbered slots::

    registry/
      CURRENT        <- "2\\n" (the published pointer, updated atomically)
      v0001/         <- a ModelBundle directory
      v0002/

Publishing writes the bundle into a hidden temporary directory inside
the root and then ``os.rename``-s it into its slot: readers either see a
complete, checksummed bundle or no slot at all — never a half-written
one. The ``CURRENT`` pointer is likewise replaced atomically
(write-temp + ``os.replace``), so a crash mid-publish leaves the
previous version live.

In-process, :meth:`ModelRegistry.activate` loads a version and swaps it
into the :attr:`~ModelRegistry.active` slot with a single reference
assignment — readers on other threads take a consistent
``(version, bundle)`` snapshot without any lock.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
import threading
from pathlib import Path

from repro.errors import DatasetError
from repro.obs.logging import get_logger
from repro.serve.bundle import MANIFEST_FILENAME, ModelBundle

__all__ = ["CURRENT_FILENAME", "ModelRegistry"]

_log = get_logger(__name__)

CURRENT_FILENAME = "CURRENT"
_SLOT_PATTERN = re.compile(r"^v(\d{4,})$")


class ModelRegistry:
    """Versioned slots for model bundles under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serializes publishers in this process; cross-process races are
        # handled by the rename-retry loop in publish().
        self._publish_lock = threading.Lock()
        # The hot-swap slot: assigned in one shot, read in one shot.
        self._active: tuple[int, ModelBundle] | None = None

    # ------------------------------------------------------------------
    # Disk layout

    def slot_path(self, version: int) -> Path:
        """Directory of ``version`` (which need not exist yet)."""
        if version < 1:
            raise ValueError(f"model versions start at 1, got {version}")
        return self.root / f"v{version:04d}"

    def versions(self) -> list[int]:
        """Sorted versions with a complete (manifest-bearing) bundle."""
        found: list[int] = []
        for entry in self.root.iterdir():
            match = _SLOT_PATTERN.match(entry.name)
            if (
                match
                and entry.is_dir()
                and (entry / MANIFEST_FILENAME).is_file()
            ):
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self) -> int | None:
        """The published version: the ``CURRENT`` pointer when valid,
        falling back to the highest complete slot on disk."""
        pointer = self.root / CURRENT_FILENAME
        if pointer.is_file():
            try:
                version = int(pointer.read_text(encoding="utf-8").strip())
            except ValueError:
                version = 0
            if (
                version >= 1
                and (self.slot_path(version) / MANIFEST_FILENAME).is_file()
            ):
                return version
        found = self.versions()
        return found[-1] if found else None

    # ------------------------------------------------------------------
    # Publish / load

    def publish(self, bundle: ModelBundle) -> int:
        """Atomically add ``bundle`` as the next version; returns it.

        The bundle is fully written (checksums and all) into a temporary
        directory inside the root, then renamed into its numbered slot.
        If another publisher claims the slot first, the rename fails and
        the next number is tried — no version is ever overwritten.
        """
        with self._publish_lock:
            staging = Path(
                tempfile.mkdtemp(prefix=".publish-", dir=self.root)
            )
            try:
                bundle.save(staging)
                found = self.versions()
                version = (found[-1] if found else 0) + 1
                while True:
                    target = self.slot_path(version)
                    # POSIX rename would happily replace an *empty*
                    # target directory; skip any existing slot first
                    # (the OSError branch covers the race window).
                    if target.exists():
                        version += 1
                        continue
                    try:
                        os.rename(staging, target)
                        break
                    except OSError:
                        if target.exists():
                            version += 1
                            continue
                        raise
            except BaseException:
                if staging.exists():  # pragma: no cover - cleanup path
                    shutil.rmtree(staging, ignore_errors=True)
                raise
            self._write_current(version)
        _log.info(
            "model_published",
            version=version,
            root=str(self.root),
            domains=len(bundle.domains),
        )
        return version

    def _write_current(self, version: int) -> None:
        """Atomically repoint ``CURRENT`` at ``version``."""
        handle, temp_name = tempfile.mkstemp(
            prefix=".current-", dir=self.root
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(f"{version}\n")
            os.replace(temp_name, self.root / CURRENT_FILENAME)
        except BaseException:  # pragma: no cover - cleanup path
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def load(self, version: int | None = None) -> ModelBundle:
        """Load a bundle from disk (the published one by default)."""
        resolved = version if version is not None else self.latest_version()
        if resolved is None:
            raise DatasetError(
                f"no published model versions under {self.root}"
            )
        return ModelBundle.load(self.slot_path(resolved))

    # ------------------------------------------------------------------
    # In-process hot swap

    def activate(self, version: int | None = None) -> int:
        """Load a version and make it the active bundle (atomic swap).

        Readers holding the previous ``active`` snapshot keep using it
        untouched; new readers see the new version. No locks are taken
        on the read path.
        """
        resolved = version if version is not None else self.latest_version()
        if resolved is None:
            raise DatasetError(
                f"no published model versions under {self.root}"
            )
        bundle = ModelBundle.load(self.slot_path(resolved))
        self._active = (resolved, bundle)
        return resolved

    @property
    def active(self) -> tuple[int, ModelBundle] | None:
        """A consistent ``(version, bundle)`` snapshot, or ``None``."""
        return self._active

    @property
    def active_version(self) -> int | None:
        """Version of the active bundle, or ``None``."""
        snapshot = self._active
        return snapshot[0] if snapshot is not None else None
