"""Vectorized online scoring over a model bundle.

:class:`DomainScorer` is the in-process answer path: vocabulary lookup
(one fancy-index gather over the bundle's feature matrix), optional
scaling, then one batched SVM decision-function call — the same math the
training pipeline runs, so a scorer over
:meth:`ModelBundle.from_detector` output reproduces
``detector.decision_scores`` exactly.

Repeat queries hit an LRU verdict cache (domain verdicts only change
when the model changes, and a new model means a new scorer), and
unknown domains follow an explicit policy:

* ``"zero"`` (default) — score the all-zero feature vector, the same
  "no behavioral evidence in any view" semantics the training-side
  :class:`~repro.core.features.FeatureSpace` uses for absent domains;
* ``"reject"`` — skip scoring; the verdict carries ``known=False`` and a
  NaN score so callers can distinguish "benign" from "never seen".
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.serve.bundle import ModelBundle

__all__ = ["UNKNOWN_POLICIES", "DomainScorer", "Verdict"]

#: Accepted values for ``DomainScorer(unknown_policy=...)``.
UNKNOWN_POLICIES: tuple[str, ...] = ("zero", "reject")


@dataclass(frozen=True, slots=True)
class Verdict:
    """One scored domain.

    Attributes:
        domain: The queried registered domain.
        score: d(x), positive = malicious side (NaN when the domain is
            unknown under the ``"reject"`` policy).
        malicious: Whether ``score`` clears the model's calibrated
            threshold.
        known: Whether the domain was in the model's vocabulary.
    """

    domain: str
    score: float
    malicious: bool
    known: bool


class DomainScorer:
    """Thread-safe batch scorer over one immutable :class:`ModelBundle`.

    Args:
        bundle: The model to answer from. Treated as immutable — hot
            reloads build a fresh scorer rather than mutating this one.
        cache_size: Max verdicts kept in the LRU cache (0 disables it).
        unknown_policy: See :data:`UNKNOWN_POLICIES`.
        metrics: Registry for cache/throughput metrics (the process
            default when omitted).
    """

    def __init__(
        self,
        bundle: ModelBundle,
        cache_size: int = 4096,
        unknown_policy: str = "zero",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if unknown_policy not in UNKNOWN_POLICIES:
            raise ValueError(
                f"unknown_policy must be one of {UNKNOWN_POLICIES}, "
                f"got {unknown_policy!r}"
            )
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.bundle = bundle
        self.unknown_policy = unknown_policy
        self.cache_size = cache_size
        self._index = {d: i for i, d in enumerate(bundle.domains)}
        self._cache: OrderedDict[str, Verdict] = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics if metrics is not None else default_registry()
        self._hits = 0
        self._misses = 0

    @property
    def known_domains(self) -> int:
        """Size of the model's domain vocabulary."""
        return len(self._index)

    @property
    def cache_len(self) -> int:
        """Verdicts currently cached."""
        with self._lock:
            return len(self._cache)

    def score(self, domain: str) -> Verdict:
        """Verdict for one domain."""
        return self.score_batch([domain])[0]

    def score_batch(self, domains: Sequence[str]) -> list[Verdict]:
        """Verdicts for ``domains``, in input order.

        Cache hits are answered without touching numpy; the misses are
        scored in one vectorized pass.
        """
        results: list[Verdict | None] = [None] * len(domains)
        misses: list[tuple[int, str]] = []
        with self._lock:
            for position, domain in enumerate(domains):
                cached = self._cache.get(domain)
                if cached is not None:
                    self._cache.move_to_end(domain)
                    results[position] = cached
                else:
                    misses.append((position, domain))
        if misses:
            fresh = self._score_uncached([d for __, d in misses])
            with self._lock:
                for (position, domain), verdict in zip(misses, fresh):
                    results[position] = verdict
                    if self.cache_size > 0:
                        self._cache[domain] = verdict
                        self._cache.move_to_end(domain)
                        while len(self._cache) > self.cache_size:
                            self._cache.popitem(last=False)
        self._record_metrics(hits=len(domains) - len(misses), misses=len(misses))
        # Every position was filled by either branch above.
        return [v for v in results if v is not None]

    def _score_uncached(self, domains: Sequence[str]) -> list[Verdict]:
        """Score domains not found in the cache (one vectorized pass)."""
        lookup = self._index.get
        indices = np.fromiter(
            (lookup(domain, -1) for domain in domains),
            dtype=np.int64,
            count=len(domains),
        )
        known = indices >= 0
        features = self.bundle.features
        if features.shape[0] == 0:
            matrix = np.zeros((len(domains), self.bundle.dimension))
        else:
            # One gather; unknown rows (-1 gathered the last row) are
            # masked back to the zero "no evidence" vector.
            matrix = features[indices]
            matrix[~known] = 0.0
        scores = self.bundle.decision_scores(matrix)
        threshold = self.bundle.classifier.threshold_
        verdicts: list[Verdict] = []
        for position, domain in enumerate(domains):
            is_known = bool(known[position])
            if not is_known and self.unknown_policy == "reject":
                verdicts.append(
                    Verdict(
                        domain=domain,
                        score=math.nan,
                        malicious=False,
                        known=False,
                    )
                )
                continue
            score = float(scores[position])
            verdicts.append(
                Verdict(
                    domain=domain,
                    score=score,
                    malicious=score >= threshold,
                    known=is_known,
                )
            )
        return verdicts

    def _record_metrics(self, hits: int, misses: int) -> None:
        registry = self._metrics
        registry.counter("serve.scored_domains").inc(hits + misses)
        if hits:
            registry.counter("serve.cache.hits").inc(hits)
        if misses:
            registry.counter("serve.cache.misses").inc(misses)
        with self._lock:
            # Publish the ratio under the lock: gauge writes then happen
            # in accumulation order, so the last one standing reflects
            # the complete hit/miss totals even under concurrent batches.
            self._hits += hits
            self._misses += misses
            total = self._hits + self._misses
            if total:
                registry.gauge("serve.cache.hit_ratio").set(
                    self._hits / total
                )
