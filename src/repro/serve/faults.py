"""Deterministic fault injection for the serving layer (test-only).

The hardening paths in :mod:`repro.serve.service` — reload fallback,
structured scorer-failure responses, load shedding under slow backends
— only earn their keep if tests can actually *trigger* them. This
module provides the trigger: a :class:`FaultInjector` with named
injection **sites** that instrumented code calls at the moments worth
breaking:

========================  =============================================
``registry.load``         fired before the registry loads a bundle
                          during :meth:`ScoringService.reload`
``scorer.score_batch``    fired before each scorer/batcher scoring call
========================  =============================================

A site with no armed rule costs one dict lookup under a lock — cheap
enough that production code paths keep the hooks unconditionally, so
tests exercise *exactly* the code that ships.

Rules are deterministic, not probabilistic: ``times=N`` arms the next N
firings (``times=None`` arms forever), each firing optionally sleeps
``latency_seconds`` and then raises ``error`` (a fresh copy per firing
so tracebacks don't cross threads). Typical usage::

    service.faults.inject(
        "registry.load",
        error=ArtifactIntegrityError("torn bundle"),
        times=3,
    )
    # the next reload retries 3 times, falls back to the last-good model

    service.faults.inject("scorer.score_batch", latency_seconds=0.5)
    # every in-flight request now holds its admission slot 500ms longer
"""

from __future__ import annotations

import copy
import threading
import time

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["FAULT_SITES", "FaultInjector"]

#: Sites the serving layer instruments.
FAULT_SITES: tuple[str, ...] = ("registry.load", "scorer.score_batch")


class _Rule:
    """One armed fault (internal)."""

    __slots__ = ("latency_seconds", "error", "remaining")

    def __init__(
        self,
        latency_seconds: float,
        error: BaseException | None,
        remaining: int | None,
    ) -> None:
        self.latency_seconds = latency_seconds
        self.error = error
        self.remaining = remaining


class FaultInjector:
    """Named injection sites with deterministic latency/error rules."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, _Rule] = {}
        registry = metrics if metrics is not None else default_registry()
        self._fired = registry.counter("serve.faults.fired")

    def inject(
        self,
        site: str,
        error: BaseException | None = None,
        times: int | None = 1,
        latency_seconds: float = 0.0,
    ) -> None:
        """Arm ``site``: the next ``times`` firings (``None`` = every
        firing) sleep ``latency_seconds`` then raise ``error`` if set.

        Re-arming a site replaces its previous rule.
        """
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; known sites: {FAULT_SITES}"
            )
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        if error is None and latency_seconds == 0.0:
            raise ValueError("a rule needs an error, a latency, or both")
        with self._lock:
            self._rules[site] = _Rule(latency_seconds, error, times)

    def clear(self, site: str | None = None) -> None:
        """Disarm ``site`` (or every site when omitted)."""
        with self._lock:
            if site is None:
                self._rules.clear()
            else:
                self._rules.pop(site, None)

    def armed(self, site: str) -> bool:
        """Whether ``site`` currently has an active rule."""
        with self._lock:
            return site in self._rules

    def fire(self, site: str) -> None:
        """Apply the armed rule for ``site``, if any.

        Called by instrumented serving code; a no-op (one locked dict
        lookup) when nothing is armed.
        """
        with self._lock:
            rule = self._rules.get(site)
            if rule is None:
                return
            if rule.remaining is not None:
                rule.remaining -= 1
                if rule.remaining <= 0:
                    del self._rules[site]
            latency = rule.latency_seconds
            error = rule.error
        self._fired.inc()
        if latency > 0.0:
            time.sleep(latency)
        if error is not None:
            # A fresh copy per firing: concurrent handler threads must
            # not share one exception instance's traceback state.
            raise copy.copy(error)
