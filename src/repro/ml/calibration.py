"""Platt scaling: probability calibration for SVM decision scores.

The paper thresholds the SVM's raw distance d(x) (equation 7); operators
often want calibrated probabilities instead ("this domain is malicious
with probability 0.93"). Platt's method fits a sigmoid

    P(y=1 | x) = 1 / (1 + exp(A * d(x) + B))

to held-out (score, label) pairs by regularized maximum likelihood,
optimized here with Newton iterations as in Platt's original paper (with
Lin et al.'s numerically stable formulation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class PlattScaler:
    """Fits the sigmoid mapping decision scores to probabilities."""

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-10) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattScaler":
        """Fit A, B on (decision score, binary label) pairs.

        Uses Platt's regularized targets t+ = (N+ + 1)/(N+ + 2),
        t- = 1/(N- + 2), which keep the fit well-behaved on separable
        data.
        """
        scores = np.asarray(scores, dtype=np.float64)
        labels = np.asarray(labels)
        if scores.shape != labels.shape:
            raise ValueError("scores and labels must have the same shape")
        positives = float(np.sum(labels == 1))
        negatives = float(labels.size - positives)
        if positives == 0 or negatives == 0:
            raise ValueError("Platt scaling needs both classes")

        target_pos = (positives + 1.0) / (positives + 2.0)
        target_neg = 1.0 / (negatives + 2.0)
        targets = np.where(labels == 1, target_pos, target_neg)

        a, b = 0.0, float(
            np.log((negatives + 1.0) / (positives + 1.0))
        )
        for __ in range(self.max_iterations):
            raw = a * scores + b
            # p = sigmoid(raw), numerically stable on both tails.
            p = np.where(
                raw >= 0,
                1.0 / (1.0 + np.exp(-np.abs(raw))),
                np.exp(-np.abs(raw)) / (1.0 + np.exp(-np.abs(raw))),
            )
            gradient_common = targets - p
            grad_a = float(np.dot(scores, gradient_common))
            grad_b = float(np.sum(gradient_common))
            w = np.maximum(p * (1.0 - p), 1e-12)
            h_aa = float(np.dot(scores * scores, w)) + 1e-12
            h_ab = float(np.dot(scores, w))
            h_bb = float(np.sum(w)) + 1e-12
            determinant = h_aa * h_bb - h_ab * h_ab
            if abs(determinant) < 1e-18:
                break
            # Newton step (gradient here is of log-likelihood; Hessian of
            # the negative log-likelihood is positive definite).
            delta_a = (h_bb * grad_a - h_ab * grad_b) / determinant
            delta_b = (h_aa * grad_b - h_ab * grad_a) / determinant
            a += delta_a
            b += delta_b
            if abs(delta_a) < self.tolerance and abs(delta_b) < self.tolerance:
                break
        # Platt's A is conventionally negative for well-ordered scores.
        self.a_, self.b_ = -a, -b
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """P(malicious) for each decision score."""
        if self.a_ is None or self.b_ is None:
            raise NotFittedError("PlattScaler")
        raw = self.a_ * np.asarray(scores, dtype=np.float64) + self.b_
        return np.where(
            raw >= 0,
            np.exp(-raw) / (1.0 + np.exp(-raw)),
            1.0 / (1.0 + np.exp(raw)),
        )
