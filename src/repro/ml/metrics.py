"""Classification metrics: ROC/AUC and friends (paper section 8.1)."""

from __future__ import annotations

import numpy as np


def _validate_binary(labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError(f"labels must be binary 0/1, got values {unique}")
    return labels.astype(int)


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points (fpr, tpr, thresholds).

    Thresholds are the distinct scores in decreasing order; a point's
    (fpr, tpr) corresponds to predicting positive for score >= threshold.
    A leading (0, 0) point with threshold +inf is included.
    """
    labels = _validate_binary(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = int(labels.sum())
    negatives = labels.size - positives
    if positives == 0 or negatives == 0:
        raise ValueError("ROC needs both positive and negative samples")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    cumulative_tp = np.cumsum(sorted_labels)
    cumulative_fp = np.cumsum(1 - sorted_labels)
    # Keep the last index of each distinct score (tie handling).
    distinct = np.flatnonzero(
        np.concatenate([np.diff(sorted_scores) != 0, [True]])
    )
    tpr = cumulative_tp[distinct] / positives
    fpr = cumulative_fp[distinct] / negatives
    thresholds = sorted_scores[distinct]
    return (
        np.concatenate([[0.0], fpr]),
        np.concatenate([[0.0], tpr]),
        np.concatenate([[np.inf], thresholds]),
    )


def auc(x: np.ndarray, y: np.ndarray) -> float:
    """Area under a curve via the trapezoidal rule (x must be sorted)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two points with matching shapes")
    dx = np.diff(x)
    if np.any(dx < 0) and np.any(dx > 0):
        raise ValueError("x must be monotonic")
    return float(abs(np.sum(dx * (y[1:] + y[:-1]) / 2.0)))


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve."""
    fpr, tpr, __ = roc_curve(labels, scores)
    return auc(fpr, tpr)


def confusion_matrix(labels: np.ndarray, predictions: np.ndarray) -> np.ndarray:
    """2x2 matrix [[tn, fp], [fn, tp]]."""
    labels = _validate_binary(labels)
    predictions = _validate_binary(predictions)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    tp = int(np.sum((labels == 1) & (predictions == 1)))
    tn = int(np.sum((labels == 0) & (predictions == 0)))
    fp = int(np.sum((labels == 0) & (predictions == 1)))
    fn = int(np.sum((labels == 1) & (predictions == 0)))
    return np.array([[tn, fp], [fn, tp]])


def accuracy_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of predictions matching the labels."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    return float(np.mean(labels == predictions))


def precision_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """tp / (tp + fp); 0.0 when nothing was predicted positive."""
    matrix = confusion_matrix(labels, predictions)
    tp, fp = matrix[1, 1], matrix[0, 1]
    return float(tp / (tp + fp)) if tp + fp else 0.0


def recall_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """tp / (tp + fn); 0.0 when there are no positives."""
    matrix = confusion_matrix(labels, predictions)
    tp, fn = matrix[1, 1], matrix[1, 0]
    return float(tp / (tp + fn)) if tp + fn else 0.0


def f1_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(labels, predictions)
    recall = recall_score(labels, predictions)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def mean_roc_curve(
    curves: list[tuple[np.ndarray, np.ndarray]],
    grid_size: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Average several ROC curves onto a common FPR grid.

    Used to draw the paper's cross-validated ROC figures: each fold
    produces one curve; the figure shows the vertical mean.
    """
    if not curves:
        raise ValueError("need at least one curve")
    grid = np.linspace(0.0, 1.0, grid_size)
    stacked = np.vstack(
        [np.interp(grid, fpr, tpr) for fpr, tpr in curves]
    )
    return grid, stacked.mean(axis=0)
