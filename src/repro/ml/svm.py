"""Kernel SVM trained with Sequential Minimal Optimization.

The paper's classifier (section 6.2): an RBF-kernel SVM with penalty
C = 0.09 and kernel coefficient gamma = 0.06, whose decision rule is

    d(x) = sum_i a_i (2 y_i - 1) K(x_i, x) + b            (equation 7)

Two LIBSVM-style solvers share the analytic two-variable update:

* ``solver="cached"`` (default) — second-order working-set selection
  (WSS2, Fan/Chen/Lin 2005), kernel rows computed on demand through an
  LRU :class:`~repro.ml.kernels.KernelRowCache` under a configurable
  ``kernel_cache_mb`` budget, periodic shrinking of bounded variables,
  and a full-gradient reconstruction pass before the final optimality
  check. Memory is O(cached_rows x n) instead of O(n^2).
* ``solver="dense"`` — the reference implementation: maximal-violating
  -pair selection over one precomputed Gram matrix. Kept selectable
  (same precedent as the LINE ``add_at`` kernel) and decision-parity
  -tested against the cached solver.

Both emit ``svm.*`` metrics (fit seconds, cache hit ratio, shrink
events) and warn with :class:`ConvergenceWarning` when the iteration
budget runs out.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.ml.kernels import KERNEL_KINDS, KernelParams, KernelRowCache
from repro.obs.metrics import default_registry

_TAU = 1e-12

SOLVERS = ("cached", "dense")

#: Default kernel-row cache budget (MiB) for the cached solver.
DEFAULT_CACHE_MB = 64.0


class ConvergenceWarning(UserWarning):
    """The SMO solver exhausted ``max_iterations`` before converging."""


@dataclass(slots=True)
class SmoResult:
    """Internal solver output."""

    alpha: np.ndarray
    bias: float
    iterations: int
    converged: bool
    shrink_events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def _bias_from_alpha(
    alpha: np.ndarray,
    labels: np.ndarray,
    decision_without_bias: np.ndarray,
    c: float,
) -> float:
    """Bias from free support vectors (fall back to bound average)."""
    free = (alpha > _TAU) & (alpha < c - _TAU)
    if free.any():
        return float(np.mean(labels[free] - decision_without_bias[free]))
    support = alpha > _TAU
    if support.any():
        return float(np.mean(labels[support] - decision_without_bias[support]))
    return 0.0


def _solve_smo(
    kernel_matrix: np.ndarray,
    labels: np.ndarray,
    c: float,
    tolerance: float,
    max_iterations: int,
) -> SmoResult:
    """Reference dense solver: min 1/2 a^T Q a - e^T a, 0 <= a <= C, y^T a = 0.

    Maximal-violating-pair selection over the full precomputed kernel
    matrix. The gradient update multiplies the kernel column by the
    label signs directly (sign flips are exact in IEEE float), so no
    n x n sign matrix is ever allocated.
    """
    n = labels.size
    alpha = np.zeros(n)
    # gradient of the dual objective: G = Q a - e; starts at -e.
    gradient = -np.ones(n)

    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        # I_up: y=+1 & a<C, or y=-1 & a>0; I_low symmetric.
        up_mask = ((labels > 0) & (alpha < c - _TAU)) | (
            (labels < 0) & (alpha > _TAU)
        )
        low_mask = ((labels > 0) & (alpha > _TAU)) | (
            (labels < 0) & (alpha < c - _TAU)
        )
        if not up_mask.any() or not low_mask.any():
            converged = True
            break
        scores = -labels * gradient
        up_scores = np.where(up_mask, scores, -np.inf)
        low_scores = np.where(low_mask, scores, np.inf)
        i = int(np.argmax(up_scores))
        j = int(np.argmin(low_scores))
        gap = up_scores[i] - low_scores[j]
        if gap < tolerance:
            converged = True
            break

        # Analytic update along the direction (alpha_i += y_i t,
        # alpha_j -= y_j t), which keeps y^T alpha constant. The curvature
        # along it is eta = K_ii + K_jj - 2 K_ij for either label pairing.
        eta = max(
            kernel_matrix[i, i] + kernel_matrix[j, j] - 2.0 * kernel_matrix[i, j],
            _TAU,
        )
        delta = gap / eta

        old_i, old_j = alpha[i], alpha[j]
        if labels[i] > 0:
            max_step_i = c - old_i
        else:
            max_step_i = old_i
        if labels[j] > 0:
            max_step_j = old_j
        else:
            max_step_j = c - old_j
        step = min(delta, max_step_i, max_step_j)
        alpha[i] = old_i + labels[i] * step
        alpha[j] = old_j - labels[j] * step

        # Incremental gradient update: G += Q[:, i] dai + Q[:, j] daj,
        # with Q[:, t] = y y_t K[:, t].
        delta_alpha_i = alpha[i] - old_i
        delta_alpha_j = alpha[j] - old_j
        gradient += labels * (labels[i] * delta_alpha_i) * kernel_matrix[:, i]
        gradient += labels * (labels[j] * delta_alpha_j) * kernel_matrix[:, j]

    decision_without_bias = (alpha * labels) @ kernel_matrix
    bias = _bias_from_alpha(alpha, labels, decision_without_bias, c)
    return SmoResult(alpha=alpha, bias=bias, iterations=iterations, converged=converged)


def _weighted_kernel_block(
    features: np.ndarray,
    params: KernelParams,
    row_indices: np.ndarray,
    col_indices: np.ndarray,
    weights: np.ndarray,
    budget_mb: float,
) -> np.ndarray:
    """``weights @ K[row_indices][:, col_indices]`` in bounded row blocks.

    Never materializes more than ``budget_mb`` of kernel entries at a
    time, so gradient reconstruction and bias computation stay within
    the cache budget the solver advertises.
    """
    out = np.zeros(col_indices.size)
    if row_indices.size == 0 or col_indices.size == 0:
        return out
    row_bytes = max(col_indices.size * 8, 8)
    # Kernel functions allocate ~3-4 temporaries of block size (norms,
    # product, exp), so cap the block at a quarter of the budget to keep
    # the whole pass within it.
    block = max(1, int(budget_mb * 1024 * 1024 / 4) // row_bytes)
    cols = features[col_indices]
    for start in range(0, row_indices.size, block):
        chunk = row_indices[start : start + block]
        kernel_block = params.matrix(features[chunk], cols)
        out += weights[start : start + block] @ kernel_block
    return out


def _decision_without_bias_at(
    features: np.ndarray,
    params: KernelParams,
    alpha: np.ndarray,
    labels: np.ndarray,
    indices: np.ndarray,
    budget_mb: float,
) -> np.ndarray:
    """sum_s alpha_s y_s K(x_s, x_t) for t in ``indices``."""
    support = np.flatnonzero(alpha > _TAU)
    return _weighted_kernel_block(
        features,
        params,
        support,
        indices,
        alpha[support] * labels[support],
        budget_mb,
    )


def _reconstruct_gradient(
    features: np.ndarray,
    params: KernelParams,
    labels: np.ndarray,
    alpha: np.ndarray,
    gradient: np.ndarray,
    active: np.ndarray,
    budget_mb: float,
) -> None:
    """Recompute stale gradient entries for every inactive variable.

    While the working set is shrunk only active entries of ``gradient``
    are maintained; before trusting a full-problem optimality check the
    inactive entries are rebuilt from scratch:
    G_t = y_t sum_s alpha_s y_s K(x_s, x_t) - 1.
    """
    n = labels.size
    mask = np.zeros(n, dtype=bool)
    mask[active] = True
    inactive = np.flatnonzero(~mask)
    if inactive.size == 0:
        return
    product = _decision_without_bias_at(
        features, params, alpha, labels, inactive, budget_mb
    )
    gradient[inactive] = labels[inactive] * product - 1.0


def _solve_smo_cached(
    features: np.ndarray,
    labels: np.ndarray,
    c: float,
    tolerance: float,
    max_iterations: int,
    params: KernelParams,
    cache_mb: float = DEFAULT_CACHE_MB,
    shrink_interval: int | None = None,
) -> SmoResult:
    """Cached-kernel shrinking SMO with second-order pair selection.

    Per iteration: pick ``i`` maximizing the KKT violation over I_up
    (as the dense solver does), then pick ``j`` minimizing the
    second-order objective -b^2/a over eligible I_low members — which
    needs exactly one kernel row, served by the LRU cache. Every
    ``shrink_interval`` iterations bounded variables that can no longer
    form a violating pair leave the active set; when the active problem
    converges, the full gradient is reconstructed and optimality is
    re-verified over all variables before the solver reports success.
    """
    n = labels.size
    alpha = np.zeros(n)
    gradient = -np.ones(n)
    diag = params.diagonal(features)
    cache = KernelRowCache(features, params, cache_mb)
    active = np.arange(n)
    interval = shrink_interval if shrink_interval is not None else min(n, 1000)
    since_shrink = 0
    shrink_events = 0
    iterations = 0
    converged = False

    def _result() -> SmoResult:
        decision = _decision_without_bias_at(
            features, params, alpha, labels, np.arange(n), cache_mb
        )
        bias = _bias_from_alpha(alpha, labels, decision, c)
        return SmoResult(
            alpha=alpha,
            bias=bias,
            iterations=iterations,
            converged=converged,
            shrink_events=shrink_events,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
        )

    while iterations < max_iterations:
        iterations += 1
        active_labels = labels[active]
        active_alpha = alpha[active]
        scores = -active_labels * gradient[active]
        up = ((active_labels > 0) & (active_alpha < c - _TAU)) | (
            (active_labels < 0) & (active_alpha > _TAU)
        )
        low = ((active_labels > 0) & (active_alpha > _TAU)) | (
            (active_labels < 0) & (active_alpha < c - _TAU)
        )
        if not up.any() or not low.any():
            if active.size < n:
                _reconstruct_gradient(
                    features, params, labels, alpha, gradient, active, cache_mb
                )
                active = np.arange(n)
                since_shrink = 0
                continue
            converged = True
            break
        up_scores = np.where(up, scores, -np.inf)
        i_local = int(np.argmax(up_scores))
        g_max = float(up_scores[i_local])
        g_min = float(np.min(np.where(low, scores, np.inf)))
        if g_max - g_min < tolerance:
            if active.size < n:
                # Converged on the shrunk problem: reconstruct the full
                # gradient and re-check optimality over every variable.
                _reconstruct_gradient(
                    features, params, labels, alpha, gradient, active, cache_mb
                )
                active = np.arange(n)
                since_shrink = 0
                continue
            converged = True
            break

        if since_shrink >= interval and active.size > 2:
            since_shrink = 0
            at_lower = active_alpha <= _TAU
            at_upper = active_alpha >= c - _TAU
            only_low = (at_upper & (active_labels > 0)) | (
                at_lower & (active_labels < 0)
            )
            only_up = (at_upper & (active_labels < 0)) | (
                at_lower & (active_labels > 0)
            )
            drop = (only_low & (scores > g_max)) | (only_up & (scores < g_min))
            if drop.any() and int(drop.sum()) <= active.size - 2:
                active = active[~drop]
                shrink_events += 1
                continue

        i = int(active[i_local])
        row_i = cache.row(i)
        row_i_active = row_i[active]
        # WSS2: among eligible I_low partners, minimize -b^2/a where
        # b = g_max + y_t G_t > 0 and a = K_ii + K_tt - 2 K_it.
        curvature = np.maximum(diag[i] + diag[active] - 2.0 * row_i_active, _TAU)
        b_values = g_max - scores
        eligible = low & (scores < g_max)
        objective = np.where(
            eligible, -(b_values * b_values) / curvature, np.inf
        )
        j_local = int(np.argmin(objective))
        j = int(active[j_local])

        gap = float(b_values[j_local])
        eta = max(diag[i] + diag[j] - 2.0 * row_i[j], _TAU)
        delta = gap / eta
        old_i, old_j = alpha[i], alpha[j]
        max_step_i = (c - old_i) if labels[i] > 0 else old_i
        max_step_j = old_j if labels[j] > 0 else (c - old_j)
        step = min(delta, max_step_i, max_step_j)
        alpha[i] = old_i + labels[i] * step
        alpha[j] = old_j - labels[j] * step

        delta_alpha_i = alpha[i] - old_i
        delta_alpha_j = alpha[j] - old_j
        row_j = cache.row(j)
        gradient[active] += active_labels * (
            (labels[i] * delta_alpha_i) * row_i_active
            + (labels[j] * delta_alpha_j) * row_j[active]
        )
        since_shrink += 1

    return _result()


class SupportVectorClassifier:
    """Binary kernel SVM with the paper's defaults (RBF, C=0.09, γ=0.06).

    Labels may be any two values; internally they map to ±1 and
    :meth:`predict` returns the original values. :meth:`decision_function`
    returns signed distances d(x) (equation 7); thresholding them at values
    other than 0 trades precision against recall, which is how the ROC
    curves in section 8 are produced.

    Args:
        solver: ``"cached"`` (default) — on-demand kernel rows with an
            LRU cache, WSS2 selection, and shrinking; ``"dense"`` — the
            full-Gram-matrix reference solver.
        kernel_cache_mb: Kernel-row cache budget for the cached solver
            (MiB); also bounds the block size of the reconstruction and
            bias passes.
    """

    def __init__(
        self,
        c: float = 0.09,
        kernel: str = "rbf",
        gamma: float = 0.06,
        degree: int = 3,
        coef0: float = 1.0,
        tolerance: float = 1e-3,
        max_iterations: int = 200_000,
        solver: str = "cached",
        kernel_cache_mb: float = DEFAULT_CACHE_MB,
    ) -> None:
        if c <= 0:
            raise ValueError("penalty parameter c must be positive")
        if kernel not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel {kernel!r}")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if solver not in SOLVERS:
            raise ValueError(
                f"unknown solver {solver!r}; expected one of {SOLVERS}"
            )
        if kernel_cache_mb <= 0:
            raise ValueError("kernel_cache_mb must be positive")
        self.c = c
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.solver = solver
        self.kernel_cache_mb = kernel_cache_mb
        self._support_vectors: np.ndarray | None = None
        self._support_coefficients: np.ndarray | None = None
        self._bias = 0.0
        self._classes: np.ndarray | None = None
        self.iterations_: int | None = None
        self.converged_: bool | None = None
        self.shrink_events_: int = 0
        self.cache_hit_ratio_: float | None = None
        self.fit_seconds_: float | None = None

    def _kernel_params(self) -> KernelParams:
        return KernelParams(
            kind=self.kernel,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
        )

    def _kernel_function(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._kernel_params().matrix(a, b)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SupportVectorClassifier":
        """Train on (n x d) features and binary labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        classes = np.unique(labels)
        if classes.size != 2:
            raise ValueError(
                f"binary classifier needs exactly 2 classes, got {classes.size}"
            )
        self._classes = classes
        signed = np.where(labels == classes[1], 1.0, -1.0)

        started = time.perf_counter()
        if self.solver == "dense":
            kernel_matrix = self._kernel_function(features, features)
            result = _solve_smo(
                kernel_matrix, signed, self.c, self.tolerance, self.max_iterations
            )
        else:
            result = _solve_smo_cached(
                features,
                signed,
                self.c,
                self.tolerance,
                self.max_iterations,
                self._kernel_params(),
                cache_mb=self.kernel_cache_mb,
            )
        elapsed = time.perf_counter() - started

        self.iterations_ = result.iterations
        self.converged_ = result.converged
        self.shrink_events_ = result.shrink_events
        self.fit_seconds_ = elapsed
        self.cache_hit_ratio_ = (
            result.cache_hit_ratio if self.solver == "cached" else None
        )

        registry = default_registry()
        registry.counter("svm.fits").inc()
        registry.histogram("svm.fit_seconds").observe(elapsed)
        if self.solver == "cached":
            registry.gauge("svm.cache_hit_ratio").set(result.cache_hit_ratio)
            if result.shrink_events:
                registry.counter("svm.shrink_events").inc(result.shrink_events)
        if not result.converged:
            warnings.warn(
                f"SMO ({self.solver}) exhausted max_iterations="
                f"{self.max_iterations} before reaching tolerance="
                f"{self.tolerance}; the model may be underfit — raise "
                "max_iterations or loosen tolerance",
                ConvergenceWarning,
                stacklevel=2,
            )

        support = result.alpha > _TAU
        self._support_vectors = features[support]
        self._support_coefficients = result.alpha[support] * signed[support]
        self._bias = result.bias
        return self

    @property
    def support_vector_count(self) -> int:
        if self._support_vectors is None:
            raise NotFittedError("SupportVectorClassifier")
        return int(self._support_vectors.shape[0])

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the decision boundary for each sample."""
        if self._support_vectors is None or self._support_coefficients is None:
            raise NotFittedError("SupportVectorClassifier")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        if self._support_vectors.shape[0] == 0:
            return np.full(features.shape[0], self._bias)
        kernel_block = self._kernel_function(features, self._support_vectors)
        return kernel_block @ self._support_coefficients + self._bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels (original label values)."""
        if self._classes is None:
            raise NotFittedError("SupportVectorClassifier")
        scores = self.decision_function(features)
        return np.where(scores >= 0, self._classes[1], self._classes[0])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given test set."""
        predictions = self.predict(features)
        return float(np.mean(predictions == np.asarray(labels)))
