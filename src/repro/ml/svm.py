"""Kernel SVM trained with Sequential Minimal Optimization.

The paper's classifier (section 6.2): an RBF-kernel SVM with penalty
C = 0.09 and kernel coefficient gamma = 0.06, whose decision rule is

    d(x) = sum_i a_i (2 y_i - 1) K(x_i, x) + b            (equation 7)

This implementation solves the standard dual with LIBSVM-style SMO:
maximal-violating-pair working-set selection over the full precomputed
kernel matrix, analytic two-variable updates with box constraints, and an
incremental gradient. The full kernel matrix keeps each iteration O(n)
numpy work, which handles the paper's ~10k-sample scale in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel

_TAU = 1e-12


@dataclass(slots=True)
class SmoResult:
    """Internal solver output."""

    alpha: np.ndarray
    bias: float
    iterations: int
    converged: bool


def _solve_smo(
    kernel_matrix: np.ndarray,
    labels: np.ndarray,
    c: float,
    tolerance: float,
    max_iterations: int,
) -> SmoResult:
    """Solve min 1/2 a^T Q a - e^T a  s.t. 0 <= a <= C, y^T a = 0."""
    n = labels.size
    alpha = np.zeros(n)
    # gradient of the dual objective: G = Q a - e; starts at -e.
    gradient = -np.ones(n)
    q_signs = labels[:, None] * labels[None, :]

    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        # I_up: y=+1 & a<C, or y=-1 & a>0; I_low symmetric.
        up_mask = ((labels > 0) & (alpha < c - _TAU)) | (
            (labels < 0) & (alpha > _TAU)
        )
        low_mask = ((labels > 0) & (alpha > _TAU)) | (
            (labels < 0) & (alpha < c - _TAU)
        )
        if not up_mask.any() or not low_mask.any():
            converged = True
            break
        scores = -labels * gradient
        up_scores = np.where(up_mask, scores, -np.inf)
        low_scores = np.where(low_mask, scores, np.inf)
        i = int(np.argmax(up_scores))
        j = int(np.argmin(low_scores))
        gap = up_scores[i] - low_scores[j]
        if gap < tolerance:
            converged = True
            break

        # Analytic update along the direction (alpha_i += y_i t,
        # alpha_j -= y_j t), which keeps y^T alpha constant. The curvature
        # along it is eta = K_ii + K_jj - 2 K_ij for either label pairing.
        eta = max(
            kernel_matrix[i, i] + kernel_matrix[j, j] - 2.0 * kernel_matrix[i, j],
            _TAU,
        )
        delta = gap / eta

        old_i, old_j = alpha[i], alpha[j]
        if labels[i] > 0:
            max_step_i = c - old_i
        else:
            max_step_i = old_i
        if labels[j] > 0:
            max_step_j = old_j
        else:
            max_step_j = c - old_j
        step = min(delta, max_step_i, max_step_j)
        alpha[i] = old_i + labels[i] * step
        alpha[j] = old_j - labels[j] * step

        # Incremental gradient update: G += Q[:, i] dai + Q[:, j] daj,
        # with Q[:, t] = y y_t K[:, t].
        delta_alpha_i = alpha[i] - old_i
        delta_alpha_j = alpha[j] - old_j
        gradient += q_signs[:, i] * kernel_matrix[:, i] * delta_alpha_i
        gradient += q_signs[:, j] * kernel_matrix[:, j] * delta_alpha_j

    # Bias from free support vectors (fall back to bound average).
    free = (alpha > _TAU) & (alpha < c - _TAU)
    decision_without_bias = (alpha * labels) @ kernel_matrix
    if free.any():
        bias = float(np.mean(labels[free] - decision_without_bias[free]))
    else:
        support = alpha > _TAU
        if support.any():
            bias = float(np.mean(labels[support] - decision_without_bias[support]))
        else:
            bias = 0.0
    return SmoResult(alpha=alpha, bias=bias, iterations=iterations, converged=converged)


class SupportVectorClassifier:
    """Binary kernel SVM with the paper's defaults (RBF, C=0.09, γ=0.06).

    Labels may be any two values; internally they map to ±1 and
    :meth:`predict` returns the original values. :meth:`decision_function`
    returns signed distances d(x) (equation 7); thresholding them at values
    other than 0 trades precision against recall, which is how the ROC
    curves in section 8 are produced.
    """

    def __init__(
        self,
        c: float = 0.09,
        kernel: str = "rbf",
        gamma: float = 0.06,
        degree: int = 3,
        coef0: float = 1.0,
        tolerance: float = 1e-3,
        max_iterations: int = 200_000,
    ) -> None:
        if c <= 0:
            raise ValueError("penalty parameter c must be positive")
        if kernel not in ("rbf", "linear", "poly"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.c = c
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self._support_vectors: np.ndarray | None = None
        self._support_coefficients: np.ndarray | None = None
        self._bias = 0.0
        self._classes: np.ndarray | None = None
        self.iterations_: int | None = None
        self.converged_: bool | None = None

    def _kernel_function(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(a, b, gamma=self.gamma)
        if self.kernel == "linear":
            return linear_kernel(a, b)
        return polynomial_kernel(
            a, b, degree=self.degree, gamma=self.gamma, coef0=self.coef0
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SupportVectorClassifier":
        """Train on (n x d) features and binary labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        classes = np.unique(labels)
        if classes.size != 2:
            raise ValueError(
                f"binary classifier needs exactly 2 classes, got {classes.size}"
            )
        self._classes = classes
        signed = np.where(labels == classes[1], 1.0, -1.0)

        kernel_matrix = self._kernel_function(features, features)
        result = _solve_smo(
            kernel_matrix, signed, self.c, self.tolerance, self.max_iterations
        )
        self.iterations_ = result.iterations
        self.converged_ = result.converged

        support = result.alpha > _TAU
        self._support_vectors = features[support]
        self._support_coefficients = result.alpha[support] * signed[support]
        self._bias = result.bias
        return self

    @property
    def support_vector_count(self) -> int:
        if self._support_vectors is None:
            raise NotFittedError("SupportVectorClassifier")
        return int(self._support_vectors.shape[0])

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the decision boundary for each sample."""
        if self._support_vectors is None or self._support_coefficients is None:
            raise NotFittedError("SupportVectorClassifier")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        if self._support_vectors.shape[0] == 0:
            return np.full(features.shape[0], self._bias)
        kernel_block = self._kernel_function(features, self._support_vectors)
        return kernel_block @ self._support_coefficients + self._bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels (original label values)."""
        if self._classes is None:
            raise NotFittedError("SupportVectorClassifier")
        scores = self.decision_function(features)
        return np.where(scores >= 0, self._classes[1], self._classes[0])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given test set."""
        predictions = self.predict(features)
        return float(np.mean(predictions == np.asarray(labels)))
