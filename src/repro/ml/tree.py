"""C4.5-style decision tree ("J48" is Weka's C4.5 implementation).

The Exposure baseline (paper section 8.2) trains a J48 decision tree on
statistical DNS features. This implementation covers the parts of C4.5
that matter for that use: gain-ratio split selection over continuous
attributes (binary <= threshold splits at class-boundary midpoints),
minimum-leaf constraints, and C4.5's pessimistic (confidence-based) error
pruning with Weka's default confidence factor 0.25. ``predict_proba``
exposes leaf class distributions so ROC curves can be drawn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import NotFittedError

_EPS = 1e-12


@dataclass(slots=True)
class _Node:
    """A tree node; leaves carry a class distribution."""

    counts: np.ndarray  # per-class training counts reaching this node
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def errors(self) -> float:
        """Training errors if this node were a leaf."""
        return self.total - float(self.counts.max())

    def probabilities(self, laplace: bool) -> np.ndarray:
        total = self.counts.sum()
        if total <= 0:
            return np.full(self.counts.size, 1.0 / self.counts.size)
        if laplace:
            return (self.counts + 1.0) / (total + self.counts.size)
        # Raw leaf frequencies — Weka J48's default (-A off). Pure leaves
        # emit exactly 0/1, so rankings are coarse and tie-heavy.
        return self.counts / total


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log2(probabilities)))


def _pessimistic_errors(errors: float, total: float, confidence: float) -> float:
    """C4.5's upper confidence bound on the leaf error count.

    Uses the normal approximation to the binomial upper limit, as in
    Quinlan's C4.5 (and Weka's J48) with default CF = 0.25 -> z ~ 0.6745.
    """
    if total <= 0:
        return 0.0
    z = _z_from_confidence(confidence)
    f = errors / total
    numerator = (
        f
        + z * z / (2 * total)
        + z * math.sqrt(max(f / total - f * f / total + z * z / (4 * total * total), 0.0))
    )
    return total * numerator / (1 + z * z / total)


@lru_cache(maxsize=16)
def _z_from_confidence(confidence: float) -> float:
    """Inverse normal CDF of (1 - confidence)."""
    from scipy.special import ndtri

    return float(ndtri(1.0 - confidence))


class DecisionTreeClassifier:
    """Binary/multiclass C4.5-style tree over continuous features.

    Args:
        min_samples_leaf: Weka's ``-M`` (default 2).
        confidence: Pruning confidence factor, Weka's ``-C`` (default
            0.25); ``None`` disables pruning.
        max_depth: Optional hard depth cap.
    """

    def __init__(
        self,
        min_samples_leaf: int = 2,
        confidence: float | None = 0.25,
        max_depth: int | None = None,
        laplace: bool = False,
    ) -> None:
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        if confidence is not None and not 0.0 < confidence < 0.5:
            raise ValueError("confidence must lie in (0, 0.5)")
        self.min_samples_leaf = min_samples_leaf
        self.confidence = confidence
        self.max_depth = max_depth
        self.laplace = laplace
        self._root: _Node | None = None
        self._classes: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        self._classes, encoded = np.unique(labels, return_inverse=True)
        self._root = self._grow(features, encoded, depth=0)
        if self.confidence is not None:
            self._prune(self._root)
        return self

    def _class_counts(self, encoded: np.ndarray) -> np.ndarray:
        assert self._classes is not None
        return np.bincount(encoded, minlength=self._classes.size).astype(float)

    def _grow(self, features: np.ndarray, encoded: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(encoded)
        node = _Node(counts=counts, depth=depth)
        if (
            encoded.size < 2 * self.min_samples_leaf
            or np.count_nonzero(counts) <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        best = self._best_split(features, encoded)
        if best is None:
            return node
        feature, threshold = best
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], encoded[mask], depth + 1)
        node.right = self._grow(features[~mask], encoded[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, encoded: np.ndarray
    ) -> tuple[int, float] | None:
        """Gain-ratio-maximizing (feature, threshold), or None.

        Following C4.5, only splits whose information gain is at least the
        average gain of all candidate splits compete on gain ratio; this
        guards against the ratio favoring near-trivial splits.
        """
        parent_entropy = _entropy(self._class_counts(encoded))
        n = encoded.size
        class_count = int(self._class_counts(encoded).size)
        ratios_all: list[np.ndarray] = []
        gains_all: list[np.ndarray] = []
        features_all: list[np.ndarray] = []
        thresholds_all: list[np.ndarray] = []
        for feature in range(features.shape[1]):
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            classes = encoded[order]
            # Candidate cut positions: where the value actually changes,
            # respecting the minimum leaf size on both sides.
            change = np.flatnonzero(np.diff(values) > _EPS) + 1
            change = change[
                (change >= self.min_samples_leaf)
                & (n - change >= self.min_samples_leaf)
            ]
            if change.size == 0:
                continue
            one_hot = np.zeros((n, class_count))
            one_hot[np.arange(n), classes] = 1.0
            prefix = np.cumsum(one_hot, axis=0)
            left_counts = prefix[change - 1]  # (cuts x classes)
            right_counts = prefix[-1] - left_counts

            def batch_entropy(counts: np.ndarray) -> np.ndarray:
                totals = counts.sum(axis=1, keepdims=True)
                with np.errstate(divide="ignore", invalid="ignore"):
                    p = np.where(totals > 0, counts / totals, 0.0)
                    logs = np.where(p > 0, np.log2(p), 0.0)
                return -np.sum(p * logs, axis=1)

            weight_left = change / n
            weight_right = 1.0 - weight_left
            gains = parent_entropy - (
                weight_left * batch_entropy(left_counts)
                + weight_right * batch_entropy(right_counts)
            )
            split_info = -(
                weight_left * np.log2(weight_left)
                + weight_right * np.log2(weight_right)
            )
            keep = gains > _EPS
            if not keep.any():
                continue
            ratios_all.append(gains[keep] / np.maximum(split_info[keep], _EPS))
            gains_all.append(gains[keep])
            features_all.append(np.full(int(keep.sum()), feature))
            thresholds_all.append(
                (values[change[keep] - 1] + values[change[keep]]) / 2.0
            )
        if not ratios_all:
            return None
        ratios = np.concatenate(ratios_all)
        gains = np.concatenate(gains_all)
        feature_ids = np.concatenate(features_all)
        thresholds = np.concatenate(thresholds_all)
        # C4.5 heuristic: only splits with at least average gain compete
        # on gain ratio (guards against near-trivial splits winning).
        eligible = gains >= gains.mean() - _EPS
        pick_pool = np.flatnonzero(eligible)
        pick = pick_pool[int(np.argmax(ratios[eligible]))]
        if ratios[pick] <= _EPS:
            return None
        return int(feature_ids[pick]), float(thresholds[pick])

    # ------------------------------------------------------------------
    # Pruning

    def _prune(self, node: _Node) -> float:
        """Bottom-up pessimistic pruning; returns estimated subtree errors."""
        assert self.confidence is not None
        if node.is_leaf:
            return _pessimistic_errors(node.errors, node.total, self.confidence)
        assert node.left is not None and node.right is not None
        subtree_errors = self._prune(node.left) + self._prune(node.right)
        leaf_errors = _pessimistic_errors(node.errors, node.total, self.confidence)
        if leaf_errors <= subtree_errors + _EPS:
            node.left = None
            node.right = None
            node.feature = -1
            return leaf_errors
        return subtree_errors

    # ------------------------------------------------------------------
    # Inference

    def _leaf_for(self, sample: np.ndarray) -> _Node:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier")
        node = self._root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if sample[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities from leaf class distributions.

        Raw leaf frequencies by default (Weka J48's behavior); pass
        ``laplace=True`` at construction for smoothed estimates.
        """
        if self._root is None or self._classes is None:
            raise NotFittedError("DecisionTreeClassifier")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        return np.vstack(
            [
                self._leaf_for(sample).probabilities(self.laplace)
                for sample in features
            ]
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._classes is None:
            raise NotFittedError("DecisionTreeClassifier")
        probabilities = self.predict_proba(features)
        return self._classes[np.argmax(probabilities, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(features) == np.asarray(labels)))

    @property
    def node_count(self) -> int:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier")
        stack = [self._root]
        count = 0
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
        return count

    @property
    def depth(self) -> int:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier")
        stack = [(self._root, 0)]
        deepest = 0
        while stack:
            node, depth = stack.pop()
            deepest = max(deepest, depth)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.append((node.left, depth + 1))
                stack.append((node.right, depth + 1))
        return deepest
