"""Cross-validation and data-splitting utilities (paper section 8.1).

The paper evaluates with k-fold cross-validation (k=10): shuffle the
labeled set, split into k groups, train on k-1 and test on the held-out
group, then average. :class:`StratifiedKFold` additionally preserves the
30/70 malicious/benign class ratio within each fold.

Fold evaluations are independent, so :func:`cross_validated_scores` can
fan them out through :func:`repro.parallel.run_tasks`. The determinism
contract matches the embedding layer's: fold splits are derived exactly
once in the caller (a pure function of ``seed``), the feature matrix is
shipped to process workers through a shared-memory
:class:`~repro.parallel.shm.ArrayPack`, and each fold task is a pure
function of (data, split) — so serial, thread, and process backends
return byte-identical scores.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

import numpy as np

from repro.obs.metrics import default_registry
from repro.parallel.executor import ParallelConfig, run_tasks
from repro.parallel.shm import ArrayPack, ArrayPackSpec, open_pack


def _train_indices_for(sample_count: int, test: np.ndarray) -> np.ndarray:
    """All indices except ``test``, ascending — one O(n) mask pass.

    Equivalent to ``np.sort(np.setdiff1d(arange(n), test))`` without the
    per-fold sort: fold indices are a subset of ``arange(n)``, so
    clearing them in a boolean mask and reading back the set positions
    yields the same ascending order.
    """
    mask = np.ones(sample_count, dtype=bool)
    mask[test] = False
    return np.flatnonzero(mask)


class KFold:
    """Plain k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, sample_count: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        if sample_count < self.n_splits:
            raise ValueError(
                f"cannot split {sample_count} samples into {self.n_splits} folds"
            )
        indices = np.arange(sample_count)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        for fold in np.array_split(indices, self.n_splits):
            test = np.sort(fold)
            yield _train_indices_for(sample_count, fold), test


class StratifiedKFold:
    """K-fold preserving the class ratio in every fold."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, labels: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) stratified on ``labels``."""
        labels = np.asarray(labels)
        rng = np.random.default_rng(self.seed)
        per_class_folds: list[list[np.ndarray]] = []
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            if class_indices.size < self.n_splits:
                raise ValueError(
                    f"class {value!r} has {class_indices.size} samples, "
                    f"fewer than n_splits={self.n_splits}"
                )
            if self.shuffle:
                rng.shuffle(class_indices)
            per_class_folds.append(np.array_split(class_indices, self.n_splits))
        for fold_number in range(self.n_splits):
            test = np.sort(
                np.concatenate([folds[fold_number] for folds in per_class_folds])
            )
            yield _train_indices_for(labels.size, test), test


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    stratify: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into (train_x, test_x, train_y, test_y)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features and labels disagree on sample count")
    rng = np.random.default_rng(seed)
    test_mask = np.zeros(labels.size, dtype=bool)
    if stratify:
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            rng.shuffle(class_indices)
            take = max(1, int(round(class_indices.size * test_fraction)))
            test_mask[class_indices[:take]] = True
    else:
        indices = np.arange(labels.size)
        rng.shuffle(indices)
        take = max(1, int(round(labels.size * test_fraction)))
        test_mask[indices[:take]] = True
    return (
        features[~test_mask],
        features[test_mask],
        labels[~test_mask],
        labels[test_mask],
    )


def _fit_and_score_fold(
    pack_spec: ArrayPackSpec,
    model_factory: Callable[[], Any],
    train: np.ndarray,
    test: np.ndarray,
) -> np.ndarray:
    """One fold: fit on ``train``, score ``test``. Pure — pickles cleanly.

    The model comes from ``model_factory`` (must be picklable for the
    process backend: a top-level class or function, not a lambda) and
    must expose ``fit`` plus ``decision_function`` or ``predict_proba``.
    """
    with open_pack(pack_spec) as arrays:
        features = arrays["features"]
        labels = arrays["labels"]
        model = model_factory()
        model.fit(features[train], labels[train])
        scorer = getattr(model, "decision_function", None)
        if scorer is not None:
            fold_scores = scorer(features[test])
        else:
            fold_scores = model.predict_proba(features[test])[:, 1]
        # Copy: the result must outlive the worker's shared-memory view.
        return np.array(fold_scores, dtype=np.float64, copy=True)


def run_fold_tasks(
    features: np.ndarray,
    labels: np.ndarray,
    model_factory: Callable[[], Any],
    splits: list[tuple[np.ndarray, np.ndarray]],
    parallel: ParallelConfig | None,
    *,
    label: str = "cv.folds",
) -> list[np.ndarray]:
    """Evaluate precomputed fold splits, serially or through a pool.

    Splits are computed by the caller (once, for all backends), so every
    backend sees identical folds; results come back in split order.
    With ``parallel=None`` the folds run inline and task exceptions
    propagate unwrapped; with a config, pool failures surface as
    :class:`~repro.errors.EmbeddingError`.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    if parallel is None:
        spec = ArrayPackSpec(
            shm_name=None,
            layout={},
            inline={"features": features, "labels": labels},
        )
        return [
            _fit_and_score_fold(spec, model_factory, train, test)
            for train, test in splits
        ]
    backend = parallel.resolved_backend()
    with ArrayPack(
        {"features": features, "labels": labels},
        use_shm=backend == "process",
    ) as pack:
        payloads = [
            (pack.spec, model_factory, train, test) for train, test in splits
        ]
        return run_tasks(
            _fit_and_score_fold,
            payloads,
            parallel,
            backend=backend,
            label=label,
        )


def cross_validated_scores(
    features: np.ndarray,
    labels: np.ndarray,
    model_factory: Callable[[], Any],
    n_splits: int = 10,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Out-of-fold decision scores via stratified k-fold.

    Every sample is scored exactly once by a model that never saw it,
    giving a single pooled ROC over the whole labeled set. ``model_factory``
    must return objects exposing fit(X, y) and either decision_function or
    predict_proba.

    Args:
        parallel: ``None`` (default) runs folds inline; a
            :class:`~repro.parallel.ParallelConfig` fans them out through
            ``run_tasks``. Scores are byte-identical across backends —
            splits are derived once here and each fold task is pure.
            The process backend requires a picklable ``model_factory``.

    Returns:
        (scores, fold_ids) both aligned with the input sample order.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    splitter = StratifiedKFold(n_splits=n_splits, seed=seed)
    splits = list(splitter.split(labels))
    started = time.perf_counter()
    fold_scores = run_fold_tasks(features, labels, model_factory, splits, parallel)
    elapsed = time.perf_counter() - started

    registry = default_registry()
    registry.counter("cv.folds").inc(len(splits))
    registry.histogram("cv.fold_seconds").observe(elapsed / max(len(splits), 1))

    scores = np.zeros(labels.size)
    fold_ids = np.zeros(labels.size, dtype=int)
    for fold_number, ((__, test), out) in enumerate(zip(splits, fold_scores)):
        scores[test] = out
        fold_ids[test] = fold_number
    return scores, fold_ids
