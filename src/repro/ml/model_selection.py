"""Cross-validation and data-splitting utilities (paper section 8.1).

The paper evaluates with k-fold cross-validation (k=10): shuffle the
labeled set, split into k groups, train on k-1 and test on the held-out
group, then average. :class:`StratifiedKFold` additionally preserves the
30/70 malicious/benign class ratio within each fold.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np


class KFold:
    """Plain k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, sample_count: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        if sample_count < self.n_splits:
            raise ValueError(
                f"cannot split {sample_count} samples into {self.n_splits} folds"
            )
        indices = np.arange(sample_count)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        for fold in np.array_split(indices, self.n_splits):
            test = np.sort(fold)
            train = np.sort(np.setdiff1d(indices, fold, assume_unique=True))
            yield train, test


class StratifiedKFold:
    """K-fold preserving the class ratio in every fold."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, labels: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) stratified on ``labels``."""
        labels = np.asarray(labels)
        rng = np.random.default_rng(self.seed)
        per_class_folds: list[list[np.ndarray]] = []
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            if class_indices.size < self.n_splits:
                raise ValueError(
                    f"class {value!r} has {class_indices.size} samples, "
                    f"fewer than n_splits={self.n_splits}"
                )
            if self.shuffle:
                rng.shuffle(class_indices)
            per_class_folds.append(np.array_split(class_indices, self.n_splits))
        all_indices = np.arange(labels.size)
        for fold_number in range(self.n_splits):
            test = np.sort(
                np.concatenate([folds[fold_number] for folds in per_class_folds])
            )
            train = np.setdiff1d(all_indices, test, assume_unique=True)
            yield train, test


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    stratify: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into (train_x, test_x, train_y, test_y)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features and labels disagree on sample count")
    rng = np.random.default_rng(seed)
    test_mask = np.zeros(labels.size, dtype=bool)
    if stratify:
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            rng.shuffle(class_indices)
            take = max(1, int(round(class_indices.size * test_fraction)))
            test_mask[class_indices[:take]] = True
    else:
        indices = np.arange(labels.size)
        rng.shuffle(indices)
        take = max(1, int(round(labels.size * test_fraction)))
        test_mask[indices[:take]] = True
    return (
        features[~test_mask],
        features[test_mask],
        labels[~test_mask],
        labels[test_mask],
    )


def cross_validated_scores(
    features: np.ndarray,
    labels: np.ndarray,
    model_factory: Callable[[], object],
    n_splits: int = 10,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Out-of-fold decision scores via stratified k-fold.

    Every sample is scored exactly once by a model that never saw it,
    giving a single pooled ROC over the whole labeled set. ``model_factory``
    must return objects exposing fit(X, y) and either decision_function or
    predict_proba.

    Returns:
        (scores, fold_ids) both aligned with the input sample order.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    scores = np.zeros(labels.size)
    fold_ids = np.zeros(labels.size, dtype=int)
    splitter = StratifiedKFold(n_splits=n_splits, seed=seed)
    for fold_number, (train, test) in enumerate(splitter.split(labels)):
        model = model_factory()
        model.fit(features[train], labels[train])
        if hasattr(model, "decision_function"):
            fold_scores = model.decision_function(features[test])
        else:
            fold_scores = model.predict_proba(features[test])[:, 1]
        scores[test] = fold_scores
        fold_ids[test] = fold_number
    return scores, fold_ids
