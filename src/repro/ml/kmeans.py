"""K-means clustering with k-means++ initialization (Lloyd's algorithm).

The workhorse underneath :class:`repro.ml.xmeans.XMeans`. Distances are
Euclidean, matching the paper's cluster-analysis setup (section 7.1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


def cluster_sums(
    data: np.ndarray, labels: np.ndarray, n_clusters: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster feature sums and member counts in one scatter pass.

    Replaces the per-cluster ``data[labels == c].sum()`` loop (k boolean
    scans over n samples) with a single ``np.add.at`` scatter plus a
    ``bincount`` — O(n·d) total regardless of k. Shared by the k-means
    Lloyd update and the X-Means split loop.
    """
    sums = np.zeros((n_clusters, data.shape[1]), dtype=np.float64)
    np.add.at(sums, labels, data)
    counts = np.bincount(labels, minlength=n_clusters)
    return sums, counts


def cluster_means(
    data: np.ndarray, labels: np.ndarray, n_clusters: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster centroids and counts; empty clusters get zero rows."""
    sums, counts = cluster_sums(data, labels, n_clusters)
    means = np.zeros_like(sums)
    occupied = counts > 0
    means[occupied] = sums[occupied] / counts[occupied, None]
    return means, counts


def _kmeans_plus_plus(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for center_index in range(1, k):
        total = closest_sq.sum()
        if total <= 1e-18:
            # All remaining points coincide with a center; pick randomly.
            pick = int(rng.integers(n))
        else:
            draw = rng.uniform(0.0, total)
            pick = int(np.searchsorted(np.cumsum(closest_sq), draw))
            pick = min(pick, n - 1)
        centers[center_index] = data[pick]
        distance_sq = np.sum((data - centers[center_index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centers


class KMeans:
    """Lloyd's algorithm with k-means++ init and restart support.

    Attributes (after fit):
        cluster_centers_: (k x d) centers.
        labels_: per-sample cluster assignment.
        inertia_: sum of squared distances to assigned centers.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iterations: int = 300,
        tolerance: float = 1e-6,
        n_init: int = 4,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if n_init < 1:
            raise ValueError("n_init must be at least 1")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.n_init = n_init
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    def _single_run(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float]:
        centers = _kmeans_plus_plus(data, self.n_clusters, rng)
        labels = np.zeros(data.shape[0], dtype=int)
        for __ in range(self.max_iterations):
            distances = (
                np.sum(data**2, axis=1)[:, None]
                - 2.0 * data @ centers.T
                + np.sum(centers**2, axis=1)[None, :]
            )
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            means, counts = cluster_means(data, labels, self.n_clusters)
            occupied = counts > 0
            new_centers[occupied] = means[occupied]
            if not occupied.all():
                # Re-seed empty clusters at the farthest point.
                farthest = int(np.argmax(np.min(distances, axis=1)))
                new_centers[~occupied] = data[farthest]
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift < self.tolerance:
                break
        distances = np.sum((data - centers[labels]) ** 2, axis=1)
        return centers, labels, float(distances.sum())

    def fit(self, data: np.ndarray) -> "KMeans":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array")
        if data.shape[0] < self.n_clusters:
            raise ValueError(
                f"{data.shape[0]} samples cannot form {self.n_clusters} clusters"
            )
        rng = np.random.default_rng(self.seed)
        best: tuple[np.ndarray, np.ndarray, float] | None = None
        for __ in range(self.n_init):
            centers, labels, inertia = self._single_run(data, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans")
        data = np.asarray(data, dtype=np.float64)
        distances = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ self.cluster_centers_.T
            + np.sum(self.cluster_centers_**2, axis=1)[None, :]
        )
        return np.argmin(distances, axis=1)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        self.fit(data)
        assert self.labels_ is not None
        return self.labels_
