"""Feature preprocessing."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class StandardScaler:
    """Zero-mean, unit-variance feature scaling.

    Constant features (zero variance) are left centered but unscaled, so
    the transform never divides by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler")
        return np.asarray(features, dtype=np.float64) * self.scale_ + self.mean_
