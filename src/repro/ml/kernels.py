"""Kernel functions for the SVM (paper section 6.2 uses RBF)."""

from __future__ import annotations

import numpy as np


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """K(x, x') = x · x'."""
    return np.asarray(a) @ np.asarray(b).T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 0.06) -> np.ndarray:
    """K(x, x') = exp(-gamma ||x - x'||^2).

    The default gamma matches the paper's kernel coefficient (0.06).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norms = np.sum(a**2, axis=1)[:, None]
    b_norms = np.sum(b**2, axis=1)[None, :]
    squared = np.maximum(a_norms + b_norms - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * squared)


def polynomial_kernel(
    a: np.ndarray,
    b: np.ndarray,
    degree: int = 3,
    gamma: float = 1.0,
    coef0: float = 1.0,
) -> np.ndarray:
    """K(x, x') = (gamma x · x' + coef0)^degree."""
    return (gamma * (np.asarray(a) @ np.asarray(b).T) + coef0) ** degree
