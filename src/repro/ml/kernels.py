"""Kernel functions for the SVM (paper section 6.2 uses RBF).

Besides the plain Gram-matrix functions this module carries the pieces
the cached SMO solver (:mod:`repro.ml.svm`) is built on:

* :class:`KernelParams` — one value object describing a configured
  kernel, able to produce full matrices, single rows, and the diagonal
  without materializing anything n x n;
* :class:`KernelRowCache` — an LRU cache of kernel *rows* under a
  configurable memory budget, so solver memory is O(cached_rows x n)
  instead of O(n^2) at the paper's ~10k-sample scale.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

KERNEL_KINDS = ("rbf", "linear", "poly")


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """K(x, x') = x · x'."""
    return np.asarray(a) @ np.asarray(b).T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 0.06) -> np.ndarray:
    """K(x, x') = exp(-gamma ||x - x'||^2).

    The default gamma matches the paper's kernel coefficient (0.06).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norms = np.sum(a**2, axis=1)[:, None]
    b_norms = np.sum(b**2, axis=1)[None, :]
    squared = np.maximum(a_norms + b_norms - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * squared)


def polynomial_kernel(
    a: np.ndarray,
    b: np.ndarray,
    degree: int = 3,
    gamma: float = 1.0,
    coef0: float = 1.0,
) -> np.ndarray:
    """K(x, x') = (gamma x · x' + coef0)^degree."""
    return (gamma * (np.asarray(a) @ np.asarray(b).T) + coef0) ** degree


@dataclass(slots=True, frozen=True)
class KernelParams:
    """A configured kernel: kind plus its hyperparameters."""

    kind: str = "rbf"
    gamma: float = 0.06
    degree: int = 3
    coef0: float = 1.0

    def matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full Gram block K(a, b)."""
        if self.kind == "rbf":
            return rbf_kernel(a, b, gamma=self.gamma)
        if self.kind == "linear":
            return linear_kernel(a, b)
        return polynomial_kernel(
            a, b, degree=self.degree, gamma=self.gamma, coef0=self.coef0
        )

    def rows(self, features: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """K(features[indices], features) — len(indices) rows on demand."""
        return self.matrix(features[np.atleast_1d(indices)], features)

    def diagonal(self, features: np.ndarray) -> np.ndarray:
        """diag K(X, X) in O(n) — no row computation needed."""
        features = np.asarray(features, dtype=np.float64)
        if self.kind == "rbf":
            return np.ones(features.shape[0])
        squared = np.einsum("ij,ij->i", features, features)
        if self.kind == "linear":
            return squared
        return (self.gamma * squared + self.coef0) ** self.degree


class KernelRowCache:
    """LRU cache of full kernel rows under a memory budget.

    Each cached entry is row ``i`` of the training Gram matrix
    (``K(x_i, X)``, length n, float64). The capacity is derived from
    ``budget_mb``; at least two rows are always allowed so the SMO pair
    update can hold both its rows. Accessing a cached row refreshes its
    recency; a miss computes the row and evicts from the cold end.

    Attributes:
        hits / misses / evictions: access accounting for the
            ``svm.cache_*`` metrics.
    """

    def __init__(
        self,
        features: np.ndarray,
        params: KernelParams,
        budget_mb: float,
    ) -> None:
        if budget_mb <= 0:
            raise ValueError("budget_mb must be positive")
        self._features = np.asarray(features, dtype=np.float64)
        self._params = params
        n = self._features.shape[0]
        row_bytes = max(n * 8, 1)
        self.capacity = max(2, int(budget_mb * 1024 * 1024) // row_bytes)
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def row(self, index: int) -> np.ndarray:
        """Kernel row ``K(x_index, X)`` (cached or computed)."""
        cached = self._rows.get(index)
        if cached is not None:
            self.hits += 1
            self._rows.move_to_end(index)
            return cached
        self.misses += 1
        row = self._params.rows(self._features, np.array([index]))[0]
        while len(self._rows) >= self.capacity:
            self._rows.popitem(last=False)
            self.evictions += 1
        self._rows[index] = row
        return row

    @property
    def bytes_held(self) -> int:
        """Bytes currently pinned by cached rows."""
        return sum(row.nbytes for row in self._rows.values())

    @property
    def hit_ratio(self) -> float:
        """Fraction of row requests served from cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
