"""Hyperparameter grid search with cross-validated AUC.

The paper fixes the SVM's penalty (C = 0.09) and kernel coefficient
(gamma = 0.06) without showing the search. This utility reproduces how
such values are found: exhaustive grid evaluation under stratified
k-fold, scored by ROC AUC.

Every (cell x fold) evaluation is independent, so with a
:class:`~repro.parallel.ParallelConfig` the whole grid fans out through
``repro.parallel.run_tasks`` as one flat task batch — fold splits are
derived once in the caller and shared by every cell, the feature matrix
rides a shared-memory pack, and serial/thread/process backends return
byte-identical evaluations.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.ml.metrics import roc_auc_score
from repro.ml.model_selection import (
    StratifiedKFold,
    _fit_and_score_fold,
    cross_validated_scores,
)
from repro.obs.metrics import default_registry
from repro.parallel.executor import ParallelConfig, run_tasks
from repro.parallel.shm import ArrayPack


@dataclass(slots=True)
class GridSearchResult:
    """Outcome of one grid evaluation."""

    best_params: dict[str, object]
    best_score: float
    # Every evaluated cell: (params, score), in evaluation order.
    evaluations: list[tuple[dict[str, object], float]] = field(
        default_factory=list
    )

    def top(self, count: int = 5) -> list[tuple[dict[str, object], float]]:
        """The best ``count`` cells, strongest first."""
        return sorted(self.evaluations, key=lambda e: e[1], reverse=True)[
            :count
        ]


@dataclass(frozen=True)
class _CellFactory:
    """Picklable ``model_factory(**params)`` closure for pool workers."""

    factory: Callable[..., Any]
    params: dict[str, object]

    def __call__(self) -> Any:
        return self.factory(**self.params)


def grid_search(
    features: np.ndarray,
    labels: np.ndarray,
    model_factory: Callable[..., object],
    param_grid: Mapping[str, Sequence[object]],
    n_splits: int = 5,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
) -> GridSearchResult:
    """Evaluate every parameter combination with k-fold CV AUC.

    Args:
        features: (n x d) feature matrix.
        labels: binary 0/1 labels.
        model_factory: Called with one combination's keyword arguments;
            must return an object with fit + decision_function (or
            predict_proba).
        param_grid: Parameter name -> candidate values.
        n_splits: Stratified folds per evaluation.
        seed: Fold-assignment seed (shared across cells, so every
            combination sees identical splits).
        parallel: ``None`` evaluates cells serially (exceptions
            propagate unwrapped); a ParallelConfig flattens the grid to
            (cell x fold) tasks for ``run_tasks``. Results are
            byte-identical across backends; the process backend needs a
            picklable ``model_factory``.

    Returns:
        The full evaluation record with the best cell marked.
    """
    names = list(param_grid)
    if not names:
        raise ValueError("param_grid must contain at least one parameter")
    cells = [
        dict(zip(names, values))
        for values in itertools.product(*(param_grid[name] for name in names))
    ]
    labels = np.asarray(labels)
    started = time.perf_counter()

    evaluations: list[tuple[dict[str, object], float]] = []
    if parallel is None:
        for params in cells:
            scores, __ = cross_validated_scores(
                features,
                labels,
                _CellFactory(model_factory, params),
                n_splits=n_splits,
                seed=seed,
            )
            evaluations.append((params, roc_auc_score(labels, scores)))
    else:
        splits = list(StratifiedKFold(n_splits=n_splits, seed=seed).split(labels))
        fold_count = len(splits)
        # One flat (cell x fold) batch: a slow cell can't serialize the
        # rest of the grid behind it.
        tasks = [
            (_CellFactory(model_factory, params), train, test)
            for params in cells
            for train, test in splits
        ]
        outputs = _run_grid_tasks(features, labels, tasks, parallel)
        for index, params in enumerate(cells):
            scores = np.zeros(labels.size)
            for fold_number, (__, test) in enumerate(splits):
                scores[test] = outputs[index * fold_count + fold_number]
            evaluations.append((params, roc_auc_score(labels, scores)))

    elapsed = time.perf_counter() - started
    registry = default_registry()
    registry.counter("cv.grid_cells").inc(len(cells))
    registry.histogram("cv.grid_seconds").observe(elapsed)

    best_params: dict[str, object] | None = None
    best_score = -np.inf
    for params, score in evaluations:
        if score > best_score:
            best_score = score
            best_params = params
    assert best_params is not None
    return GridSearchResult(
        best_params=best_params,
        best_score=float(best_score),
        evaluations=evaluations,
    )


def _run_grid_tasks(
    features: np.ndarray,
    labels: np.ndarray,
    tasks: list[tuple[_CellFactory, np.ndarray, np.ndarray]],
    parallel: ParallelConfig,
) -> list[np.ndarray]:
    """Run heterogeneous (factory, train, test) tasks through one pool.

    The data is packed once and the flat batch submitted directly —
    going through ``run_fold_tasks`` per cell would re-open the pool for
    every grid cell.
    """
    backend = parallel.resolved_backend()
    with ArrayPack(
        {"features": np.asarray(features), "labels": labels},
        use_shm=backend == "process",
    ) as pack:
        payloads = [
            (pack.spec, factory, train, test) for factory, train, test in tasks
        ]
        return run_tasks(
            _fit_and_score_fold,
            payloads,
            parallel,
            backend=backend,
            label="cv.grid",
        )
