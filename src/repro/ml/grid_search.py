"""Hyperparameter grid search with cross-validated AUC.

The paper fixes the SVM's penalty (C = 0.09) and kernel coefficient
(gamma = 0.06) without showing the search. This utility reproduces how
such values are found: exhaustive grid evaluation under stratified
k-fold, scored by ROC AUC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.ml.metrics import roc_auc_score
from repro.ml.model_selection import cross_validated_scores


@dataclass(slots=True)
class GridSearchResult:
    """Outcome of one grid evaluation."""

    best_params: dict[str, object]
    best_score: float
    # Every evaluated cell: (params, score), in evaluation order.
    evaluations: list[tuple[dict[str, object], float]] = field(
        default_factory=list
    )

    def top(self, count: int = 5) -> list[tuple[dict[str, object], float]]:
        """The best ``count`` cells, strongest first."""
        return sorted(self.evaluations, key=lambda e: e[1], reverse=True)[
            :count
        ]


def grid_search(
    features: np.ndarray,
    labels: np.ndarray,
    model_factory: Callable[..., object],
    param_grid: Mapping[str, Sequence[object]],
    n_splits: int = 5,
    seed: int = 0,
) -> GridSearchResult:
    """Evaluate every parameter combination with k-fold CV AUC.

    Args:
        features: (n x d) feature matrix.
        labels: binary 0/1 labels.
        model_factory: Called with one combination's keyword arguments;
            must return an object with fit + decision_function (or
            predict_proba).
        param_grid: Parameter name -> candidate values.
        n_splits: Stratified folds per evaluation.
        seed: Fold-assignment seed (shared across cells, so every
            combination sees identical splits).

    Returns:
        The full evaluation record with the best cell marked.
    """
    names = list(param_grid)
    if not names:
        raise ValueError("param_grid must contain at least one parameter")
    evaluations: list[tuple[dict[str, object], float]] = []
    best_params: dict[str, object] | None = None
    best_score = -np.inf
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        scores, __ = cross_validated_scores(
            features,
            labels,
            lambda params=params: model_factory(**params),
            n_splits=n_splits,
            seed=seed,
        )
        score = roc_auc_score(labels, scores)
        evaluations.append((params, score))
        if score > best_score:
            best_score = score
            best_params = params
    assert best_params is not None
    return GridSearchResult(
        best_params=best_params,
        best_score=best_score,
        evaluations=evaluations,
    )
