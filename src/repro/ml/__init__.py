"""From-scratch machine-learning substrate.

The evaluation environment has no scikit-learn, so the model classes the
paper uses are implemented here on numpy: an SMO-trained kernel SVM
(section 6.2), a C4.5-style decision tree for the Exposure baseline
(section 8.2), k-means++ and X-Means with BIC splitting (section 7.1),
plus the metrics and cross-validation machinery of section 8.1.
"""

from repro.ml.calibration import PlattScaler
from repro.ml.grid_search import GridSearchResult, grid_search
from repro.ml.kernels import (
    KernelParams,
    KernelRowCache,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)
from repro.ml.svm import ConvergenceWarning, SupportVectorClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.kmeans import KMeans
from repro.ml.xmeans import XMeans
from repro.ml.metrics import (
    accuracy_score,
    auc,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validated_scores,
    train_test_split,
)
from repro.ml.preprocessing import StandardScaler

__all__ = [
    "ConvergenceWarning",
    "DecisionTreeClassifier",
    "GridSearchResult",
    "KFold",
    "KMeans",
    "KernelParams",
    "KernelRowCache",
    "PlattScaler",
    "StandardScaler",
    "StratifiedKFold",
    "SupportVectorClassifier",
    "XMeans",
    "accuracy_score",
    "auc",
    "confusion_matrix",
    "cross_validated_scores",
    "f1_score",
    "grid_search",
    "linear_kernel",
    "polynomial_kernel",
    "precision_score",
    "rbf_kernel",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "train_test_split",
]
