"""X-Means: k-means with automatic selection of k (Pelleg & Moore, 2000).

The paper clusters domain embeddings with X-Means "due to its simplicity
and automated selection and optimization on the number of clusters"
(section 7.1). Starting from ``k_min`` centers, each cluster is test-split
into two by a local k-means; the split is kept when it improves the
Bayesian Information Criterion under an identical spherical-Gaussian
model, and the process repeats until no split is accepted or ``k_max`` is
reached.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.kmeans import KMeans, cluster_means

_EPS = 1e-12


def _spherical_log_likelihood(
    points: np.ndarray, center: np.ndarray, total_points: int
) -> float:
    """Log-likelihood of one cluster under the identical-variance model.

    Follows Pelleg & Moore's formulation: the maximum-likelihood variance
    is pooled within the cluster, and each point also carries a log prior
    for belonging to this cluster (n_i / N).
    """
    n, dims = points.shape
    if n <= 1:
        return 0.0
    variance = float(np.sum((points - center) ** 2)) / (dims * max(n - 1, 1))
    variance = max(variance, _EPS)
    return float(
        -0.5 * n * dims * np.log(2.0 * np.pi * variance)
        - 0.5 * dims * (n - 1)
        + n * np.log(n / total_points)
    )


def _bic(
    data: np.ndarray,
    centers: np.ndarray,
    labels: np.ndarray,
) -> float:
    """BIC of a k-means solution (higher is better)."""
    n, dims = data.shape
    k = centers.shape[0]
    log_likelihood = 0.0
    for cluster in range(k):
        members = data[labels == cluster]
        if members.shape[0] == 0:
            continue
        log_likelihood += _spherical_log_likelihood(members, centers[cluster], n)
    parameter_count = k * (dims + 1)  # centers + shared variance per cluster
    return log_likelihood - 0.5 * parameter_count * np.log(n)


class XMeans:
    """Cluster with an automatically chosen number of clusters.

    Attributes (after fit):
        cluster_centers_: chosen centers.
        labels_: per-sample assignments.
        n_clusters_: chosen k.
    """

    def __init__(
        self,
        k_min: int = 2,
        k_max: int = 50,
        max_improvement_rounds: int = 16,
        seed: int = 0,
    ) -> None:
        if k_min < 1:
            raise ValueError("k_min must be at least 1")
        if k_max < k_min:
            raise ValueError("k_max must be >= k_min")
        self.k_min = k_min
        self.k_max = k_max
        self.max_improvement_rounds = max_improvement_rounds
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.n_clusters_: int | None = None

    def fit(self, data: np.ndarray) -> "XMeans":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array")
        if data.shape[0] < self.k_min:
            raise ValueError("fewer samples than k_min")

        k = min(self.k_min, data.shape[0])
        model = KMeans(n_clusters=k, seed=self.seed).fit(data)
        centers = model.cluster_centers_
        labels = model.labels_
        assert centers is not None and labels is not None

        for round_number in range(self.max_improvement_rounds):
            new_centers: list[np.ndarray] = []
            split_any = False
            # All parent centroids in one scatter pass (vs one boolean
            # scan per cluster inside the loop).
            parent_centers, __ = cluster_means(data, labels, centers.shape[0])
            for cluster in range(centers.shape[0]):
                members = data[labels == cluster]
                if (
                    members.shape[0] < 4
                    or centers.shape[0] + len(new_centers) - cluster >= self.k_max
                ):
                    new_centers.append(centers[cluster])
                    continue
                parent_center = parent_centers[cluster]
                parent_bic = _bic(
                    members, parent_center[None, :], np.zeros(members.shape[0], int)
                )
                child_model = KMeans(
                    n_clusters=2, seed=self.seed + 31 * round_number + cluster
                ).fit(members)
                assert child_model.cluster_centers_ is not None
                assert child_model.labels_ is not None
                child_bic = _bic(
                    members, child_model.cluster_centers_, child_model.labels_
                )
                if child_bic > parent_bic:
                    new_centers.extend(child_model.cluster_centers_)
                    split_any = True
                else:
                    new_centers.append(centers[cluster])
            if not split_any:
                break
            k = len(new_centers)
            # Re-fit globally at the new k so points can migrate across
            # the split boundaries (Pelleg & Moore's improve-params step).
            model = KMeans(n_clusters=k, seed=self.seed + round_number + 1)
            model.fit(data)
            centers = model.cluster_centers_
            labels = model.labels_
            assert centers is not None and labels is not None
            if k >= self.k_max:
                break

        self.cluster_centers_ = centers
        self.labels_ = labels
        self.n_clusters_ = int(centers.shape[0])
        return self

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        self.fit(data)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, data: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("XMeans")
        data = np.asarray(data, dtype=np.float64)
        distances = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ self.cluster_centers_.T
            + np.sum(self.cluster_centers_**2, axis=1)[None, :]
        )
        return np.argmin(distances, axis=1)
