"""Command-line interface.

Six subcommands mirror an operator's workflow:

* ``repro-dns simulate OUTDIR`` — generate a campus capture to disk;
* ``repro-dns stats TRACEDIR`` — Figure-1 traffic statistics;
* ``repro-dns detect TRACEDIR`` — run the full pipeline, print ranked
  domain scores (and write them to a TSV);
* ``repro-dns cluster TRACEDIR`` — mine and annotate domain clusters;
* ``repro-dns describe`` — print the stage graph, each stage's artifact
  inputs/outputs, and (with ``--checkpoint-dir``) restorability;
* ``repro-dns serve MODELDIR`` — online scoring over a published model.

Serving: ``detect`` and ``cluster`` take ``--save-model DIR`` to publish
the trained model into a versioned registry, which ``serve`` then
answers from over HTTP (``POST /v1/score``; see docs/serving.md) —
scoring no longer requires retraining on every invocation.

Run any subcommand with ``-h`` for its options. The entry point is also
callable as ``python -m repro.cli``.

Observability: every subcommand takes ``-v/--verbose`` (repeatable) for
structured logfmt logs on stderr; ``detect`` and ``cluster`` print a
per-stage timing table and accept ``--metrics-out PATH`` to dump the
full metrics snapshot as JSON (see docs/observability.md). Bad input
paths exit with status 2 instead of a traceback.

Parallelism: ``detect`` and ``cluster`` accept ``--workers N`` (``0``
serial, ``auto`` one per CPU) and ``--parallel-backend`` to fan the
embedding stage out over workers; embeddings are byte-identical to the
serial run for the same seed (see docs/parallelism.md).

Out-of-core ingestion: ``detect`` and ``cluster`` accept
``--chunk-records`` / ``--chunk-seconds`` to stream the trace in
bounded batches instead of materializing it, ``--checkpoint-dir`` to
persist a resumable checkpoint after every pipeline stage, and
``--resume`` to continue a crashed run from its last complete stage —
with outputs byte-identical to a monolithic cold run (see
docs/ingestion.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.analysis.reporting import format_series_table
from repro.analysis.stats import compute_traffic_statistics
from repro.core.clustering import DomainClusterer
from repro.core.dataflow import detection_graph
from repro.core.detector import ClassifierConfig
from repro.ml.svm import DEFAULT_CACHE_MB, SOLVERS
from repro.core.pipeline import (
    STAGE_CLUSTER,
    MaliciousDomainDetector,
    PipelineConfig,
)
from repro.core.stages import span_name
from repro.obs.tracing import trace
from repro.dns.dhcp import DhcpLog
from repro.dns.logfmt import DnsTraceReader
from repro.dns.types import DnsQuery, DnsResponse
from repro.embedding.line import KERNELS, LineConfig
from repro.ingest import (
    CheckpointedPipeline,
    ChunkPolicy,
    ChunkedIngestStage,
    IngestConfig,
    PipelineCheckpointer,
    PipelineOutcome,
    pipeline_fingerprint,
)
from repro.labels import (
    IntelligenceFeed,
    SimulatedThreatBook,
    SimulatedVirusTotal,
    build_labeled_dataset,
)
from repro.obs import configure as configure_logging
from repro.obs import default_registry, get_logger
from repro.parallel import BACKENDS, ParallelConfig
from repro.obs.export import render_timing_table, write_snapshot
from repro.serve import (
    UNKNOWN_POLICIES,
    ModelBundle,
    ModelRegistry,
    ScoringService,
    ServiceConfig,
)
from repro.simulation import SimulationConfig, TraceGenerator
from repro.simulation.groundtruth import GroundTruth

_log = get_logger(__name__)


def _reject_trace_dir(directory: Path) -> str | None:
    """Why ``directory`` can't be read as a trace dir, or ``None`` if OK."""
    if not directory.exists():
        return f"trace directory does not exist: {directory}"
    if not directory.is_dir():
        return f"not a directory: {directory}"
    if not (directory / "dns.log").is_file():
        return f"no dns.log in {directory}"
    return None


def _require_trace_dir(args) -> Path | None:
    """Validated trace directory, or ``None`` after printing an error."""
    directory = Path(args.tracedir)
    error = _reject_trace_dir(directory)
    if error is not None:
        print(f"repro-dns {args.command}: {error}", file=sys.stderr)
        return None
    return directory


def _reject_model_outdir(directory: Path) -> str | None:
    """Why ``directory`` can't receive a model bundle, or ``None``.

    Checked *before* the expensive pipeline run, mirroring the trace-dir
    validation: a typo'd ``--save-model`` path fails in milliseconds
    with exit 2 instead of after minutes of training.
    """
    if directory.exists():
        if not directory.is_dir():
            return f"model output path is not a directory: {directory}"
        if not os.access(directory, os.W_OK):
            return f"model output directory is not writable: {directory}"
        return None
    parent = directory.parent
    if not parent.is_dir():
        return f"parent directory does not exist: {parent}"
    if not os.access(parent, os.W_OK):
        return f"parent directory is not writable: {parent}"
    return None


def _require_model_outdir(args) -> tuple[Path | None, bool]:
    """(validated --save-model dir or None, ok). Prints errors itself."""
    save_model = getattr(args, "save_model", None)
    if save_model is None:
        return None, True
    directory = Path(save_model)
    error = _reject_model_outdir(directory)
    if error is not None:
        print(f"repro-dns {args.command}: {error}", file=sys.stderr)
        return None, False
    return directory, True


def _publish_model(detector, outdir: Path) -> int:
    """Publish the fitted detector's bundle into the registry at outdir."""
    registry = ModelRegistry(outdir)
    version = registry.publish(ModelBundle.from_detector(detector))
    print(f"published model v{version:04d} to {outdir}")
    return version


def _emit_observability(args) -> None:
    """Print the stage-timing table; write the JSON snapshot if asked."""
    registry = default_registry()
    print("\nstage timings:")
    print(render_timing_table(registry))
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        path = write_snapshot(registry, Path(metrics_out))
        print(f"wrote metrics snapshot to {path}", file=sys.stderr)


def _load_trace_dir(directory: Path):
    """Read (queries, responses, dhcp, truth-or-None) from a trace dir."""
    records = list(DnsTraceReader(directory / "dns.log"))
    queries = [r for r in records if isinstance(r, DnsQuery)]
    responses = [r for r in records if isinstance(r, DnsResponse)]
    dhcp_path = directory / "dhcp.log"
    dhcp = DhcpLog.load(dhcp_path) if dhcp_path.exists() else None
    truth_path = directory / "groundtruth.tsv"
    truth = GroundTruth.load(truth_path) if truth_path.exists() else None
    return queries, responses, dhcp, truth


def _parse_workers(value: str) -> int | str:
    """Argparse type for ``--workers``: ``"auto"`` or a non-negative int."""
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError("workers must be non-negative")
    return workers


def _pipeline_config(args) -> PipelineConfig:
    return PipelineConfig(
        embedding=LineConfig(
            dimension=args.dimension,
            seed=args.seed,
            kernel=args.line_kernel,
        ),
        parallel=ParallelConfig(
            workers=args.workers, backend=args.parallel_backend
        ),
        classifier=ClassifierConfig(
            solver=getattr(args, "svm_solver", "cached"),
            kernel_cache_mb=getattr(args, "svm_cache_mb", DEFAULT_CACHE_MB),
        ),
    )


def _build_detector(args, queries, responses, dhcp) -> MaliciousDomainDetector:
    detector = MaliciousDomainDetector(_pipeline_config(args))
    detector.build_graphs(queries, responses, dhcp)
    print(detector.pruning_report.summary(), file=sys.stderr)
    detector.build_similarity_graphs()
    detector.learn_embeddings()
    return detector


def _chunked_requested(args) -> bool:
    """Whether any chunked-ingestion flag engages the out-of-core path."""
    return (
        getattr(args, "chunk_records", None) is not None
        or getattr(args, "chunk_seconds", None) is not None
        or getattr(args, "checkpoint_dir", None) is not None
        or getattr(args, "resume", False)
    )


def _reject_ingest_args(args) -> str | None:
    """Why the chunked-ingestion flags are inconsistent, or ``None``."""
    if getattr(args, "resume", False) and not getattr(
        args, "checkpoint_dir", None
    ):
        return "--resume requires --checkpoint-dir"
    chunk_records = getattr(args, "chunk_records", None)
    if chunk_records is not None and chunk_records < 1:
        return f"--chunk-records must be >= 1, got {chunk_records}"
    chunk_seconds = getattr(args, "chunk_seconds", None)
    if chunk_seconds is not None and chunk_seconds <= 0:
        return f"--chunk-seconds must be positive, got {chunk_seconds}"
    return None


def _run_chunked_pipeline(
    args,
    directory: Path,
    dhcp,
    dataset_for,
    *,
    cluster_k_max: int | None = None,
    cluster_seed: int = 0,
) -> PipelineOutcome:
    """Run the memory-bounded chunked pipeline for detect / cluster."""
    config = _pipeline_config(args)
    default_policy = ChunkPolicy()
    policy = ChunkPolicy(
        max_records=args.chunk_records
        if args.chunk_records is not None
        else default_policy.max_records,
        max_seconds=args.chunk_seconds,
    )
    dns_log = directory / "dns.log"
    checkpointer = None
    if args.checkpoint_dir is not None:
        fingerprint = pipeline_fingerprint(
            config, {"dns": dns_log.resolve()}
        )
        checkpointer = PipelineCheckpointer(args.checkpoint_dir, fingerprint)
    pipeline = CheckpointedPipeline(
        config, IngestConfig(chunk=policy), checkpointer, dhcp=dhcp
    )
    outcome = pipeline.run(
        dns_log,
        dataset_for,
        resume=args.resume,
        cluster_k_max=cluster_k_max,
        cluster_seed=cluster_seed,
    )
    if outcome.resumed_from is not None:
        print(
            f"resumed from checkpoint stage '{outcome.resumed_from}'",
            file=sys.stderr,
        )
    report = outcome.detector.pruning_report
    if report is not None:
        print(report.summary(), file=sys.stderr)
    return outcome


def cmd_simulate(args) -> int:
    outdir = Path(args.outdir)
    if outdir.exists() and not outdir.is_dir():
        print(
            f"repro-dns simulate: output path is not a directory: {outdir}",
            file=sys.stderr,
        )
        return 2
    if args.scale == "tiny":
        config = SimulationConfig.tiny(seed=args.seed)
    elif args.scale == "paper":
        config = SimulationConfig.paper_scale(seed=args.seed)
    else:
        config = SimulationConfig(seed=args.seed)
    if args.days is not None:
        config.duration_days = args.days
    trace = TraceGenerator(config).generate()
    trace.save(outdir)
    print(trace.metadata.description)
    print(f"wrote dns.log / dhcp.log / groundtruth.tsv under {outdir}")
    return 0


def cmd_stats(args) -> int:
    directory = _require_trace_dir(args)
    if directory is None:
        return 2
    queries, __, __, __ = _load_trace_dir(directory)
    stats = compute_traffic_statistics(queries, bin_seconds=args.bin_seconds)
    print(
        format_series_table(
            ["metric", "value"],
            [
                ["total queries", stats.total_queries],
                ["unique FQDNs", stats.total_unique_fqdns],
                ["unique e2LDs", stats.total_unique_e2lds],
                ["bins", stats.bin_count],
                ["peak bin volume", int(stats.query_volume.max())],
            ],
        )
    )
    if args.profile:
        profile = stats.daily_profile()
        print("\nhour-of-day profile (mean queries per hour):")
        for hour, value in enumerate(profile):
            bar = "#" * int(50 * value / max(profile.max(), 1e-9))
            print(f"  {hour:02d}:00 {value:10.1f} {bar}")
    return 0


def cmd_detect(args) -> int:
    directory = _require_trace_dir(args)
    if directory is None:
        return 2
    model_outdir, outdir_ok = _require_model_outdir(args)
    if not outdir_ok:
        return 2
    ingest_error = _reject_ingest_args(args)
    if ingest_error is not None:
        print(f"repro-dns detect: {ingest_error}", file=sys.stderr)
        return 2
    if _chunked_requested(args):
        dhcp_path = directory / "dhcp.log"
        dhcp = DhcpLog.load(dhcp_path) if dhcp_path.exists() else None
        truth_path = directory / "groundtruth.tsv"
        truth = GroundTruth.load(truth_path) if truth_path.exists() else None
        if truth is None:
            print(
                "detect requires groundtruth.tsv for the simulated label "
                "feeds",
                file=sys.stderr,
            )
            return 2
        feed = IntelligenceFeed(truth)
        virustotal = SimulatedVirusTotal(truth)
        outcome = _run_chunked_pipeline(
            args,
            directory,
            dhcp,
            lambda ds: build_labeled_dataset(feed, virustotal, ds),
        )
        detector = outcome.detector
        domains = outcome.domains
        scores = outcome.scores
    else:
        queries, responses, dhcp, truth = _load_trace_dir(directory)
        if truth is None:
            print(
                "detect requires groundtruth.tsv for the simulated label "
                "feeds",
                file=sys.stderr,
            )
            return 2
        detector = _build_detector(args, queries, responses, dhcp)
        feed = IntelligenceFeed(truth)
        virustotal = SimulatedVirusTotal(truth)
        dataset = build_labeled_dataset(feed, virustotal, detector.domains)
        detector.fit(dataset)
        domains = detector.domains
        scores = detector.decision_scores(domains)

    order = np.argsort(-scores)
    out_path = directory / "scores.tsv"
    with open(out_path, "w", encoding="utf-8") as stream:
        for index in order:
            stream.write(f"{domains[int(index)]}\t{scores[index]:.6f}\n")
    print(f"wrote {len(scores)} scored domains to {out_path}")
    print("\ntop suspects:")
    for index in order[: args.top]:
        print(f"  {scores[index]:+8.3f}  {domains[int(index)]}")
    if model_outdir is not None:
        _publish_model(detector, model_outdir)
    _emit_observability(args)
    return 0


def cmd_cluster(args) -> int:
    directory = _require_trace_dir(args)
    if directory is None:
        return 2
    model_outdir, outdir_ok = _require_model_outdir(args)
    if not outdir_ok:
        return 2
    ingest_error = _reject_ingest_args(args)
    if ingest_error is not None:
        print(f"repro-dns cluster: {ingest_error}", file=sys.stderr)
        return 2
    if _chunked_requested(args):
        dhcp_path = directory / "dhcp.log"
        dhcp = DhcpLog.load(dhcp_path) if dhcp_path.exists() else None
        truth_path = directory / "groundtruth.tsv"
        truth = GroundTruth.load(truth_path) if truth_path.exists() else None
        if model_outdir is not None and truth is None:
            print(
                "repro-dns cluster: --save-model requires groundtruth.tsv "
                "to train the classifier",
                file=sys.stderr,
            )
            return 2
        dataset_for = None
        if truth is not None:
            feed = IntelligenceFeed(truth)
            virustotal = SimulatedVirusTotal(truth)
            dataset_for = lambda ds: build_labeled_dataset(  # noqa: E731
                feed, virustotal, ds
            )
        outcome = _run_chunked_pipeline(
            args,
            directory,
            dhcp,
            dataset_for,
            cluster_k_max=args.k_max,
            cluster_seed=args.seed,
        )
        detector = outcome.detector
        clusters = outcome.clusters or []
        print(f"{len(clusters)} clusters")
        if truth is not None:
            threatbook = SimulatedThreatBook(truth)
            for cluster in clusters:
                category, share = threatbook.dominant_category(
                    cluster.domains
                )
                if category == "unknown":
                    continue
                members = cluster.domains
                print(
                    f"  cluster {cluster.cluster_id:3d}: {len(members):5d} "
                    f"domains, {share:.0%} "
                    f"{category}: {', '.join(members[:3])}..."
                )
        else:
            for cluster in clusters:
                print(
                    f"  cluster {cluster.cluster_id:3d}: {len(cluster):5d} "
                    f"domains: {', '.join(cluster.domains[:3])}..."
                )
        if model_outdir is not None and truth is not None:
            _publish_model(detector, model_outdir)
        _emit_observability(args)
        return 0
    queries, responses, dhcp, truth = _load_trace_dir(directory)
    if model_outdir is not None and truth is None:
        print(
            "repro-dns cluster: --save-model requires groundtruth.tsv "
            "to train the classifier",
            file=sys.stderr,
        )
        return 2
    detector = _build_detector(args, queries, responses, dhcp)
    clusterer = DomainClusterer(k_min=4, k_max=args.k_max, seed=args.seed)
    with trace(span_name(STAGE_CLUSTER)):
        clusters = clusterer.fit(
            detector.domains, detector.features_for(detector.domains)
        )
    print(f"{len(clusters)} clusters")
    if truth is not None:
        threatbook = SimulatedThreatBook(truth)
        for report in clusterer.annotate(threatbook):
            if report.dominant_category == "unknown":
                continue
            members = report.cluster.domains
            print(
                f"  cluster {report.cluster.cluster_id:3d}: {len(members):5d} "
                f"domains, {report.category_share:.0%} "
                f"{report.dominant_category}: {', '.join(members[:3])}..."
            )
    else:
        for cluster in clusters:
            print(
                f"  cluster {cluster.cluster_id:3d}: {len(cluster):5d} domains: "
                f"{', '.join(cluster.domains[:3])}..."
            )
    if model_outdir is not None and truth is not None:
        feed = IntelligenceFeed(truth)
        virustotal = SimulatedVirusTotal(truth)
        detector.fit(build_labeled_dataset(feed, virustotal, detector.domains))
        _publish_model(detector, model_outdir)
    _emit_observability(args)
    return 0


def cmd_describe(args) -> int:
    """Print the detection stage graph and checkpoint restorability."""
    # A representative full graph: the chunked source plus every
    # optional stage, so the whole dataflow is visible. Nothing runs —
    # describe() is a static summary of the validated DAG.
    graph = detection_graph(
        PipelineConfig(),
        source=ChunkedIngestStage("dns.log", ChunkPolicy()),
        dataset_for=None,
        score_all=True,
        cluster_k_max=60,
    )
    checkpointer = (
        PipelineCheckpointer(args.checkpoint_dir)
        if args.checkpoint_dir is not None
        else None
    )
    print("detection pipeline stages (execution order):")
    for position, info in enumerate(graph.describe()):
        print(f"\n  {position:02d} {info.name}  [span {span_name(info.name)}]")
        print(f"     inputs:  {', '.join(info.inputs) or '(trace records)'}")
        print(f"     outputs: {', '.join(info.outputs)}")
        notes = []
        if not info.checkpointed:
            notes.append("not checkpointed")
        if info.supersedes:
            notes.append(f"supersedes {', '.join(info.supersedes)}")
        if notes:
            print(f"     notes:   {'; '.join(notes)}")
        if checkpointer is None:
            continue
        manifest = checkpointer.peek(info.name)
        if manifest is None:
            status = "none"
        elif manifest.complete:
            status = "restorable (complete)"
        else:
            cursor = manifest.meta.get("cursor")
            status = f"restorable (partial, cursor={cursor})"
        print(f"     checkpoint: {status}")
    if args.checkpoint_dir is not None and checkpointer is not None:
        latest = None
        for info in graph.describe():
            if checkpointer.peek(info.name) is not None:
                latest = info.name
        print(
            f"\ncheckpoints under {args.checkpoint_dir}: "
            + (f"latest stage is '{latest}'" if latest else "none found")
        )
    return 0


def cmd_serve(args) -> int:
    root = Path(args.model)
    if not root.exists():
        print(
            f"repro-dns serve: model directory does not exist: {root}",
            file=sys.stderr,
        )
        return 2
    if not root.is_dir():
        print(
            f"repro-dns serve: model path is not a directory: {root}",
            file=sys.stderr,
        )
        return 2
    registry = ModelRegistry(root)
    if registry.latest_version() is None:
        print(
            f"repro-dns serve: no published model versions under {root} "
            "(create one with detect --save-model)",
            file=sys.stderr,
        )
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        unknown_policy=args.unknown_policy,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        batch_window_seconds=args.batch_window_ms / 1000.0,
        deadline_seconds=args.deadline_ms / 1000.0,
    )
    try:
        config.validate()
    except ValueError as error:
        print(f"repro-dns serve: {error}", file=sys.stderr)
        return 2
    service = ScoringService(registry, config)
    host, port = service.start()
    print(
        f"serving model v{service.active_version:04d} "
        f"on http://{host}:{port}"
    )
    print(
        "endpoints: POST /v1/score, POST /admin/reload, "
        "GET /healthz /readyz /metrics (Ctrl-C to stop)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.stop()
    return 0


def _add_ingest_args(parser: argparse.ArgumentParser) -> None:
    """Chunked-ingestion / checkpointing flags shared by detect and cluster."""
    parser.add_argument("--chunk-records", type=int, default=None,
                        metavar="N",
                        help="ingest the trace in bounded chunks of at most "
                        "N records (memory stays bounded by the chunk size) "
                        "instead of one in-memory pass; outputs are "
                        "byte-identical either way")
    parser.add_argument("--chunk-seconds", type=float, default=None,
                        metavar="S",
                        help="additionally bound each chunk to S seconds of "
                        "trace time")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        dest="checkpoint_dir",
                        help="persist a resumable checkpoint after each "
                        "pipeline stage under DIR")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the last complete checkpoint in "
                        "--checkpoint-dir (torn or mismatched checkpoints "
                        "are rejected)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dns",
        description="Malicious-domain detection via behavioral modeling "
        "and graph embedding (ICDCS 2019 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="structured logs on stderr (-v info, -vv debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", parents=[common],
                           help="generate a campus DNS capture")
    p_sim.add_argument("outdir")
    p_sim.add_argument("--scale", choices=["tiny", "default", "paper"],
                       default="tiny")
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--days", type=float, default=None)
    p_sim.set_defaults(handler=cmd_simulate)

    p_stats = sub.add_parser("stats", parents=[common],
                             help="Figure-1 traffic statistics")
    p_stats.add_argument("tracedir")
    p_stats.add_argument("--bin-seconds", type=float, default=3600.0)
    p_stats.add_argument("--profile", action="store_true",
                         help="print the hour-of-day profile")
    p_stats.set_defaults(handler=cmd_stats)

    p_detect = sub.add_parser("detect", parents=[common],
                              help="score domains in a capture")
    p_detect.add_argument("tracedir")
    p_detect.add_argument("--dimension", type=int, default=16)
    p_detect.add_argument("--seed", type=int, default=13)
    p_detect.add_argument("--top", type=int, default=15)
    p_detect.add_argument("--workers", type=_parse_workers, default=0,
                          metavar="N",
                          help="embedding workers: 0 serial (default), "
                          "'auto' for one per CPU, or a count")
    p_detect.add_argument("--parallel-backend", choices=list(BACKENDS),
                          default="process",
                          help="worker backend when --workers > 1")
    p_detect.add_argument("--line-kernel", choices=list(KERNELS),
                          default="segment",
                          help="LINE SGD kernel: fused 'segment' "
                          "(default) or the 'add_at' reference loop")
    p_detect.add_argument("--svm-solver", choices=list(SOLVERS),
                          default="cached", dest="svm_solver",
                          help="SMO solver: row-'cached' with shrinking "
                          "(default) or the full-matrix 'dense' reference")
    p_detect.add_argument("--svm-cache-mb", type=float,
                          default=DEFAULT_CACHE_MB, dest="svm_cache_mb",
                          metavar="MB",
                          help="kernel row-cache budget for the cached "
                          "solver (MiB, default %(default)s)")
    p_detect.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="write a JSON metrics snapshot to PATH")
    p_detect.add_argument("--save-model", metavar="DIR", default=None,
                          dest="save_model",
                          help="publish the trained model as a new version "
                          "in registry DIR (servable with 'serve')")
    _add_ingest_args(p_detect)
    p_detect.set_defaults(handler=cmd_detect)

    p_cluster = sub.add_parser("cluster", parents=[common],
                               help="mine domain clusters")
    p_cluster.add_argument("tracedir")
    p_cluster.add_argument("--dimension", type=int, default=16)
    p_cluster.add_argument("--seed", type=int, default=13)
    p_cluster.add_argument("--k-max", type=int, default=50)
    p_cluster.add_argument("--workers", type=_parse_workers, default=0,
                           metavar="N",
                           help="embedding workers: 0 serial (default), "
                           "'auto' for one per CPU, or a count")
    p_cluster.add_argument("--parallel-backend", choices=list(BACKENDS),
                           default="process",
                           help="worker backend when --workers > 1")
    p_cluster.add_argument("--line-kernel", choices=list(KERNELS),
                           default="segment",
                           help="LINE SGD kernel: fused 'segment' "
                           "(default) or the 'add_at' reference loop")
    p_cluster.add_argument("--svm-solver", choices=list(SOLVERS),
                           default="cached", dest="svm_solver",
                           help="SMO solver: row-'cached' with shrinking "
                           "(default) or the full-matrix 'dense' reference")
    p_cluster.add_argument("--svm-cache-mb", type=float,
                           default=DEFAULT_CACHE_MB, dest="svm_cache_mb",
                           metavar="MB",
                           help="kernel row-cache budget for the cached "
                           "solver (MiB, default %(default)s)")
    p_cluster.add_argument("--metrics-out", metavar="PATH", default=None,
                           help="write a JSON metrics snapshot to PATH")
    p_cluster.add_argument("--save-model", metavar="DIR", default=None,
                           dest="save_model",
                           help="publish the trained model as a new version "
                           "in registry DIR (requires groundtruth.tsv)")
    _add_ingest_args(p_cluster)
    p_cluster.set_defaults(handler=cmd_cluster)

    p_describe = sub.add_parser("describe", parents=[common],
                                help="print the pipeline stage graph")
    p_describe.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                            dest="checkpoint_dir",
                            help="also report which stages are restorable "
                            "from the checkpoints under DIR")
    p_describe.set_defaults(handler=cmd_describe)

    p_serve = sub.add_parser("serve", parents=[common],
                             help="online scoring over a published model")
    p_serve.add_argument("model",
                         help="model registry directory (from --save-model)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8053,
                         help="bind port (0 for an ephemeral one)")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="verdict LRU cache size (0 disables)")
    p_serve.add_argument("--unknown-policy", choices=list(UNKNOWN_POLICIES),
                         default="zero", dest="unknown_policy",
                         help="unknown domains: score the zero 'no "
                         "evidence' vector, or reject without a score")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         dest="max_inflight", metavar="N",
                         help="scoring requests allowed to execute "
                         "concurrently (default 8)")
    p_serve.add_argument("--queue-depth", type=int, default=32,
                         dest="queue_depth", metavar="N",
                         help="requests allowed to wait for a slot before "
                         "excess load is shed with 429 (default 32)")
    p_serve.add_argument("--batch-window-ms", type=float, default=0.0,
                         dest="batch_window_ms", metavar="MS",
                         help="coalesce concurrent requests arriving within "
                         "MS milliseconds into one vectorized scoring call "
                         "(0 disables micro-batching; default 0)")
    p_serve.add_argument("--deadline-ms", type=float, default=5000.0,
                         dest="deadline_ms", metavar="MS",
                         help="per-request budget; requests not served "
                         "within it get 503 (default 5000)")
    p_serve.set_defaults(handler=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    # Each invocation reports its own run: the timing table and
    # --metrics-out snapshot cover exactly this command.
    default_registry().reset()
    _log.debug("command_started", command=args.command)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
