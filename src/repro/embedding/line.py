"""LINE: Large-scale Information Network Embedding (Tang et al., WWW'15).

The paper (section 5) embeds each domain-similarity graph with LINE,
preserving first-order proximity (observed edge weights) and second-order
proximity (shared neighborhoods). This is a from-scratch reimplementation:

* edges are sampled with probability proportional to their weight via an
  alias table (edge sampling, section 5.2 of this paper / Tang et al.);
* negative vertices come from the degree^0.75 noise distribution of
  word2vec-style negative sampling;
* optimization is stochastic gradient descent with a linearly decaying
  learning rate, vectorized over minibatches with ``np.add.at``
  scatter-adds — the numpy analogue of LINE's lock-free asynchronous
  updates.

``order="both"`` trains first- and second-order embeddings of half the
requested dimension each and concatenates them, as in the LINE paper's
experiments.

Training decomposes into independent single-order *tasks* (planned by
:func:`repro.parallel.partition.plan_line_tasks`): each order draws its
generator from its own ``SeedSequence`` child of ``config.seed``, so the
orders share nothing and can run serially here or on workers via
``train_line(..., parallel=ParallelConfig(...))`` — with byte-identical
results either way (LINE's lock-free asynchronous updates, Tang et al.,
realized as task-level rather than row-level parallelism).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.embedding.alias import AliasSampler
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph
from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.executor import ParallelConfig

_SCORE_CLIP = 10.0

# Progress reports per single-order training run ("both" makes two runs,
# so a full train_line reports up to 2x this many epochs).
_REPORTS_PER_ORDER = 10


@dataclass(slots=True)
class LineConfig:
    """Hyperparameters for LINE training.

    Attributes:
        dimension: Final embedding size per graph (the paper's k).
        order: ``"first"``, ``"second"``, or ``"both"``.
        negatives: Negative samples per positive edge (word2vec K).
        total_samples: Edge samples drawn during training; ``None``
            auto-scales with graph size.
        batch_size: Minibatch size for the vectorized SGD.
        initial_lr: Starting learning rate (decays linearly to ~0).
        normalize: L2-normalize the final vectors (recommended before
            SVM/RBF classification — raw LINE norms depend on degree).
        vector_scale: Radius the normalized vectors are placed at. Raw
            LINE output has norms of a few units; the paper's RBF kernel
            coefficient (gamma = 0.06) is calibrated for that magnitude,
            so normalized vectors are re-scaled to radius 4 by default
            (the median-heuristic operating point: gamma * E[d^2] ~ 1).
            Ignored when ``normalize`` is False.
        seed: RNG seed.
    """

    dimension: int = 32
    order: str = "both"
    negatives: int = 5
    total_samples: int | None = None
    batch_size: int = 4096
    initial_lr: float = 0.025
    normalize: bool = True
    vector_scale: float = 4.0
    seed: int = 13

    def validate(self) -> None:
        if self.dimension < 2:
            raise EmbeddingError("dimension must be at least 2")
        if self.order not in ("first", "second", "both"):
            raise EmbeddingError(f"unknown order {self.order!r}")
        if self.order == "both" and self.dimension % 2 != 0:
            raise EmbeddingError("order='both' needs an even dimension")
        if self.negatives < 1:
            raise EmbeddingError("negatives must be at least 1")
        if self.total_samples is not None and self.total_samples < 1:
            raise EmbeddingError(
                "total_samples must be at least 1 when set (use None to "
                "auto-scale with graph size)"
            )
        if self.batch_size < 1:
            raise EmbeddingError("batch_size must be at least 1")
        if self.initial_lr <= 0:
            raise EmbeddingError("initial_lr must be positive")
        if self.vector_scale <= 0:
            raise EmbeddingError("vector_scale must be positive")
        if isinstance(self.seed, bool) or not isinstance(
            self.seed, (int, np.integer)
        ):
            raise EmbeddingError(
                f"seed must be an integer, got {type(self.seed).__name__}"
            )

    def resolved_samples(self, edge_count: int) -> int:
        if self.total_samples is not None:
            return self.total_samples
        # Enough passes for small graphs, capped for big ones (quality
        # plateaus well before the cap empirically — doubling it moved
        # downstream AUC by < 0.005 on the default-scale trace).
        return int(min(max(edge_count * 60, 400_000), 15_000_000))


@dataclass(slots=True)
class LineEmbedding:
    """A trained embedding: row i of ``vectors`` embeds ``domains[i]``."""

    kind: str
    domains: list[str]
    vectors: np.ndarray
    config: LineConfig
    domain_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.domain_index:
            self.domain_index = {d: i for i, d in enumerate(self.domains)}

    @property
    def dimension(self) -> int:
        return int(self.vectors.shape[1])

    def vector(self, domain: str) -> np.ndarray:
        """Embedding of ``domain``; zeros when the domain wasn't embedded.

        Domains can be absent from one view (e.g. NXDOMAIN-only domains
        never appear in the domain-IP graph); a zero vector encodes
        "no behavioral evidence in this view".
        """
        index = self.domain_index.get(domain)
        if index is None:
            return np.zeros(self.dimension)
        return self.vectors[index]

    def matrix(self, domain_order: list[str]) -> np.ndarray:
        """Stack vectors for ``domain_order`` (zeros for unknown domains)."""
        out = np.zeros((len(domain_order), self.dimension))
        for row, domain in enumerate(domain_order):
            index = self.domain_index.get(domain)
            if index is not None:
                out[row] = self.vectors[index]
        return out


def _sigmoid(scores: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(scores, -_SCORE_CLIP, _SCORE_CLIP)))


def _train_single_order(
    sources: np.ndarray,
    targets: np.ndarray,
    edge_sampler: AliasSampler,
    noise_sampler: AliasSampler,
    node_count: int,
    dimension: int,
    use_context: bool,
    config: LineConfig,
    rng: np.random.Generator,
    total_samples: int,
    progress=None,
    epoch_offset: int = 0,
    epoch_total: int = 0,
) -> np.ndarray:
    """Train one proximity order; returns the vertex embedding matrix.

    ``use_context=True`` trains second-order proximity with separate
    context vectors; ``False`` trains first-order with shared vectors.

    When ``progress`` is given, the loop additionally tracks the running
    negative-sampling loss and reports ``on_epoch`` about
    ``_REPORTS_PER_ORDER`` times over the run (``epoch_offset`` /
    ``epoch_total`` stitch the two runs of ``order="both"`` into one
    sequence). With ``progress=None`` no loss terms are computed at all.
    """
    vertex = (rng.uniform(-0.5, 0.5, size=(node_count, dimension))) / dimension
    context = (
        np.zeros((node_count, dimension))
        if use_context
        else vertex  # first order: both sides share the same table
    )

    drawn = 0
    # Cap the minibatch relative to graph size: a batch much larger than
    # the vertex set applies hundreds of stale-gradient updates to each
    # vector at once, which overshoots and collapses small graphs.
    batch_size = min(config.batch_size, max(32, 4 * node_count))
    negatives = config.negatives
    # Sample-count thresholds at which progress is reported; the last one
    # equals total_samples so the final batch always reports.
    thresholds = [
        max(1, round(total_samples * i / _REPORTS_PER_ORDER))
        for i in range(1, _REPORTS_PER_ORDER + 1)
    ]
    next_report = 0
    loss_sum = 0.0
    loss_terms = 0
    batch_loss = 0.0
    while drawn < total_samples:
        batch = min(batch_size, total_samples - drawn)
        lr = config.initial_lr * max(1e-4, 1.0 - drawn / total_samples)
        edge_ids = edge_sampler.sample(batch, rng)
        # Random orientation: undirected edges act as two directed ones.
        flip = rng.uniform(size=batch) < 0.5
        u = np.where(flip, targets[edge_ids], sources[edge_ids])
        v = np.where(flip, sources[edge_ids], targets[edge_ids])

        grad_u = np.zeros((batch, dimension))

        # Positive pairs: label 1.
        pos_scores = np.einsum("ij,ij->i", vertex[u], context[v])
        if progress is not None:
            batch_loss = float(np.mean(-np.log(_sigmoid(pos_scores))))
        pos_coeff = (_sigmoid(pos_scores) - 1.0) * lr
        grad_u += pos_coeff[:, None] * context[v]
        delta_v = pos_coeff[:, None] * vertex[u]

        if use_context:
            np.add.at(context, v, -delta_v)
        else:
            np.add.at(vertex, v, -delta_v)

        # Negative pairs: label 0, drawn from the noise distribution.
        for __ in range(negatives):
            neg = noise_sampler.sample(batch, rng)
            neg_scores = np.einsum("ij,ij->i", vertex[u], context[neg])
            if progress is not None:
                batch_loss += float(np.mean(-np.log(_sigmoid(-neg_scores))))
            neg_coeff = _sigmoid(neg_scores) * lr
            grad_u += neg_coeff[:, None] * context[neg]
            delta_neg = neg_coeff[:, None] * vertex[u]
            if use_context:
                np.add.at(context, neg, -delta_neg)
            else:
                np.add.at(vertex, neg, -delta_neg)

        np.add.at(vertex, u, -grad_u)
        drawn += batch
        if progress is not None:
            loss_sum += batch_loss
            loss_terms += 1
            if next_report < len(thresholds) and drawn >= thresholds[next_report]:
                while (
                    next_report < len(thresholds)
                    and drawn >= thresholds[next_report]
                ):
                    next_report += 1
                progress.on_epoch(
                    epoch_offset + next_report,
                    epoch_total,
                    loss_sum / loss_terms,
                )
                loss_sum = 0.0
                loss_terms = 0
    return vertex


def _finalize_vectors(vectors: np.ndarray, config: LineConfig) -> np.ndarray:
    """Apply the ``normalize`` / ``vector_scale`` contract to raw output.

    Zero rows (domains with no sampled evidence) stay zero — they mean
    "no behavioral signal", and scaling them would invent one.
    """
    if not config.normalize:
        return vectors
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return np.where(
        norms > 1e-12, vectors / norms * config.vector_scale, vectors
    )


def _record_training_metrics(total_samples: int, elapsed: float) -> None:
    """Record one training run's ``line.*`` counters and throughput."""
    registry = default_registry()
    registry.counter("line.edges_sampled").inc(total_samples)
    registry.counter("line.trainings").inc()
    if elapsed > 0:
        registry.gauge("line.edges_per_sec").set(total_samples / elapsed)


def train_line(
    graph: SimilarityGraph,
    config: LineConfig | None = None,
    progress=None,
    parallel: "ParallelConfig | None" = None,
) -> LineEmbedding:
    """Embed a similarity graph with LINE.

    Args:
        graph: A weighted similarity graph from
            :func:`repro.graphs.projection.project_to_similarity`.
        config: Hyperparameters (defaults to :class:`LineConfig`).
        progress: Optional :class:`repro.obs.ProgressCallback`; receives
            ~10 ``on_epoch(epoch, total, loss)`` reports per trained
            order with the mean negative-sampling loss since the last
            report. ``None`` (the default) skips all loss bookkeeping.
        parallel: Optional :class:`repro.parallel.ParallelConfig`; when
            it resolves to a pool backend, ``order="both"`` trains its
            two orders on workers concurrently. Output is byte-identical
            to the serial path for the same seed (see
            ``docs/parallelism.md``).

    Returns:
        The trained :class:`LineEmbedding` over ``graph.domains``. The
        embedding echoes the *validated* config, so downstream consumers
        can trust its invariants (e.g. ``vector_scale`` only applies
        when ``normalize`` is set; zero vectors stay zero either way).

    Raises:
        EmbeddingError: for empty graphs or invalid hyperparameters.
    """
    from repro.parallel.partition import plan_line_tasks

    if config is None:
        config = LineConfig()
    config.validate()
    if graph.node_count == 0:
        raise EmbeddingError(f"cannot embed empty graph (kind={graph.kind!r})")
    if graph.edge_count == 0:
        # Degenerate but legal: all-zero embedding (no behavioral signal).
        return LineEmbedding(
            kind=graph.kind,
            domains=list(graph.domains),
            vectors=np.zeros((graph.node_count, config.dimension)),
            config=config,
        )

    tasks = plan_line_tasks(graph.kind, graph.edge_count, config)
    if parallel is not None:
        backend = parallel.resolved_backend(sum(t.weight for t in tasks))
        if backend != "serial":
            # Deferred import: repro.parallel.train imports this module.
            from repro.parallel.train import train_views

            return train_views([(graph.kind, graph, config)], parallel,
                               progress)[graph.kind]

    edge_sampler = AliasSampler(graph.weights)
    degrees = graph.degree_array()
    noise_sampler = AliasSampler(np.power(np.maximum(degrees, 1e-12), 0.75))

    started = time.perf_counter()
    vectors = np.empty((graph.node_count, config.dimension))
    for task in tasks:
        vectors[:, task.column : task.column + task.dimension] = (
            _train_single_order(
                graph.rows, graph.cols, edge_sampler, noise_sampler,
                graph.node_count, task.dimension, task.use_context, config,
                np.random.default_rng(task.seed), task.total_samples,
                progress, task.epoch_offset, task.epoch_total,
            )
        )
    elapsed = time.perf_counter() - started
    _record_training_metrics(sum(t.total_samples for t in tasks), elapsed)

    return LineEmbedding(
        kind=graph.kind,
        domains=list(graph.domains),
        vectors=_finalize_vectors(vectors, config),
        config=config,
    )
