"""LINE: Large-scale Information Network Embedding (Tang et al., WWW'15).

The paper (section 5) embeds each domain-similarity graph with LINE,
preserving first-order proximity (observed edge weights) and second-order
proximity (shared neighborhoods). This is a from-scratch reimplementation:

* edges are sampled with probability proportional to their weight via an
  alias table (edge sampling, section 5.2 of this paper / Tang et al.);
* negative vertices come from the degree^0.75 noise distribution of
  word2vec-style negative sampling;
* optimization is stochastic gradient descent with a linearly decaying
  learning rate, vectorized over minibatches — the numpy analogue of
  LINE's lock-free asynchronous updates. The inner loop is a pluggable
  *kernel* (:mod:`repro.embedding.kernels`): ``"segment"`` (default)
  runs a fused pass with compiled segment-reduction scatters,
  ``"add_at"`` is the per-negative ``np.add.at`` reference loop.

``order="both"`` trains first- and second-order embeddings of half the
requested dimension each and concatenates them, as in the LINE paper's
experiments.

Training decomposes into independent single-order *tasks* (planned by
:func:`repro.parallel.partition.plan_line_tasks`): each order draws its
generator from its own ``SeedSequence`` child of ``config.seed``, so the
orders share nothing and can run serially here or on workers via
``train_line(..., parallel=ParallelConfig(...))`` — with byte-identical
results either way (LINE's lock-free asynchronous updates, Tang et al.,
realized as task-level rather than row-level parallelism).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.embedding.alias import AliasSampler
from repro.embedding.kernels import (
    _REPORTS_PER_ORDER as _REPORTS_PER_ORDER,  # re-export: partition planning
    KERNELS,
    prepare_edge_arrays,
    train_single_order,
)
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph
from repro.obs.metrics import default_registry
from repro.obs.progress import ProgressCallback

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.executor import ParallelConfig

__all__ = [
    "KERNELS",
    "LineConfig",
    "LineEmbedding",
    "train_line",
]


@dataclass(slots=True)
class LineConfig:
    """Hyperparameters for LINE training.

    Attributes:
        dimension: Final embedding size per graph (the paper's k).
        order: ``"first"``, ``"second"``, or ``"both"``.
        negatives: Negative samples per positive edge (word2vec K).
        total_samples: Edge samples drawn during training; ``None``
            auto-scales with graph size.
        batch_size: Minibatch size for the vectorized SGD.
        initial_lr: Starting learning rate (decays linearly to ~0).
        normalize: L2-normalize the final vectors (recommended before
            SVM/RBF classification — raw LINE norms depend on degree).
        vector_scale: Radius the normalized vectors are placed at. Raw
            LINE output has norms of a few units; the paper's RBF kernel
            coefficient (gamma = 0.06) is calibrated for that magnitude,
            so normalized vectors are re-scaled to radius 4 by default
            (the median-heuristic operating point: gamma * E[d^2] ~ 1).
            Ignored when ``normalize`` is False.
        seed: RNG seed.
        kernel: Inner-loop backend — ``"segment"`` (default, fused
            segment-reduction SGD) or ``"add_at"`` (the per-negative
            ``np.add.at`` reference loop). For a fixed seed each kernel
            is deterministic across serial/thread/process backends, but
            the two kernels draw different random streams and so
            produce different (equally valid) embeddings — see
            ``docs/embedding-kernels.md``.
    """

    dimension: int = 32
    order: str = "both"
    negatives: int = 5
    total_samples: int | None = None
    batch_size: int = 4096
    initial_lr: float = 0.025
    normalize: bool = True
    vector_scale: float = 4.0
    seed: int = 13
    kernel: str = "segment"

    def validate(self) -> None:
        if self.dimension < 2:
            raise EmbeddingError("dimension must be at least 2")
        if self.order not in ("first", "second", "both"):
            raise EmbeddingError(f"unknown order {self.order!r}")
        if self.order == "both" and self.dimension % 2 != 0:
            raise EmbeddingError("order='both' needs an even dimension")
        if self.negatives < 1:
            raise EmbeddingError("negatives must be at least 1")
        if self.total_samples is not None and self.total_samples < 1:
            raise EmbeddingError(
                "total_samples must be at least 1 when set (use None to "
                "auto-scale with graph size)"
            )
        if self.batch_size < 1:
            raise EmbeddingError("batch_size must be at least 1")
        if self.initial_lr <= 0:
            raise EmbeddingError("initial_lr must be positive")
        if self.vector_scale <= 0:
            raise EmbeddingError("vector_scale must be positive")
        if isinstance(self.seed, bool) or not isinstance(
            self.seed, (int, np.integer)
        ):
            raise EmbeddingError(
                f"seed must be an integer, got {type(self.seed).__name__}"
            )
        if self.kernel not in KERNELS:
            raise EmbeddingError(
                f"unknown kernel {self.kernel!r} (expected one of {KERNELS})"
            )

    def resolved_samples(self, edge_count: int) -> int:
        if self.total_samples is not None:
            return self.total_samples
        # Enough passes for small graphs, capped for big ones (quality
        # plateaus well before the cap empirically — doubling it moved
        # downstream AUC by < 0.005 on the default-scale trace).
        return int(min(max(edge_count * 60, 400_000), 15_000_000))


@dataclass(slots=True)
class LineEmbedding:
    """A trained embedding: row i of ``vectors`` embeds ``domains[i]``."""

    kind: str
    domains: list[str]
    vectors: np.ndarray
    config: LineConfig
    domain_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.domain_index:
            self.domain_index = {d: i for i, d in enumerate(self.domains)}

    @property
    def dimension(self) -> int:
        return int(self.vectors.shape[1])

    def vector(self, domain: str) -> np.ndarray:
        """Embedding of ``domain``; zeros when the domain wasn't embedded.

        Domains can be absent from one view (e.g. NXDOMAIN-only domains
        never appear in the domain-IP graph); a zero vector encodes
        "no behavioral evidence in this view".
        """
        index = self.domain_index.get(domain)
        if index is None:
            return np.zeros(self.dimension)
        return self.vectors[index]

    def matrix(self, domain_order: list[str]) -> np.ndarray:
        """Stack vectors for ``domain_order`` (zeros for unknown domains)."""
        if self.vectors.shape[0] == 0:
            return np.zeros((len(domain_order), self.dimension))
        lookup = self.domain_index.get
        indices = np.fromiter(
            (lookup(domain, -1) for domain in domain_order),
            dtype=np.int64,
            count=len(domain_order),
        )
        # One fancy-index gather; unknown domains (-1, which gathered
        # the last row) are masked back to zero afterwards.
        out = self.vectors[indices]
        out[indices < 0] = 0.0
        return out


def _train_single_order(
    sources: np.ndarray,
    targets: np.ndarray,
    edge_sampler: AliasSampler,
    noise_sampler: AliasSampler,
    node_count: int,
    dimension: int,
    use_context: bool,
    config: LineConfig,
    rng: np.random.Generator,
    total_samples: int,
    progress: ProgressCallback | None = None,
    epoch_offset: int = 0,
    epoch_total: int = 0,
) -> np.ndarray:
    """Train one proximity order; returns the vertex embedding matrix.

    ``use_context=True`` trains second-order proximity with separate
    context vectors; ``False`` trains first-order with shared vectors.
    Dispatches to the kernel named by ``config.kernel``
    (:mod:`repro.embedding.kernels`); ``sources``/``targets`` and
    ``edge_sampler`` must have been laid out for that kernel via
    :func:`~repro.embedding.kernels.prepare_edge_arrays`.

    When ``progress`` is given, the loop additionally tracks the running
    negative-sampling loss and reports ``on_epoch`` about
    ``_REPORTS_PER_ORDER`` times over the run (``epoch_offset`` /
    ``epoch_total`` stitch the two runs of ``order="both"`` into one
    sequence). With ``progress=None`` no loss terms are computed at all.
    """
    return train_single_order(
        sources,
        targets,
        edge_sampler,
        noise_sampler,
        node_count,
        dimension,
        use_context,
        config,
        rng,
        total_samples,
        progress,
        epoch_offset,
        epoch_total,
    )


def _finalize_vectors(vectors: np.ndarray, config: LineConfig) -> np.ndarray:
    """Apply the ``normalize`` / ``vector_scale`` contract to raw output.

    Zero rows (domains with no sampled evidence) stay zero — they mean
    "no behavioral signal", and scaling them would invent one.
    """
    if not config.normalize:
        return vectors
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return np.where(
        norms > 1e-12, vectors / norms * config.vector_scale, vectors
    )


def _record_training_metrics(
    total_samples: int, elapsed: float, kernel: str = "segment"
) -> None:
    """Record one training run's ``line.*`` counters and throughput.

    Throughput lands both in the kernel-agnostic ``line.edges_per_sec``
    gauge (the long-standing dashboard key) and a per-backend
    ``line.edges_per_sec.<kernel>`` gauge so comparison runs of the two
    kernels stay distinguishable in one snapshot.
    """
    registry = default_registry()
    registry.counter("line.edges_sampled").inc(total_samples)
    registry.counter("line.trainings").inc()
    if elapsed > 0:
        rate = total_samples / elapsed
        registry.gauge("line.edges_per_sec").set(rate)
        registry.gauge(f"line.edges_per_sec.{kernel}").set(rate)


def train_line(
    graph: SimilarityGraph,
    config: LineConfig | None = None,
    progress: ProgressCallback | None = None,
    parallel: "ParallelConfig | None" = None,
) -> LineEmbedding:
    """Embed a similarity graph with LINE.

    Args:
        graph: A weighted similarity graph from
            :func:`repro.graphs.projection.project_to_similarity`.
        config: Hyperparameters (defaults to :class:`LineConfig`).
        progress: Optional :class:`repro.obs.ProgressCallback`; receives
            ~10 ``on_epoch(epoch, total, loss)`` reports per trained
            order with the mean negative-sampling loss since the last
            report. ``None`` (the default) skips all loss bookkeeping.
        parallel: Optional :class:`repro.parallel.ParallelConfig`; when
            it resolves to a pool backend, ``order="both"`` trains its
            two orders on workers concurrently. Output is byte-identical
            to the serial path for the same seed (see
            ``docs/parallelism.md``).

    Returns:
        The trained :class:`LineEmbedding` over ``graph.domains``. The
        embedding echoes the *validated* config, so downstream consumers
        can trust its invariants (e.g. ``vector_scale`` only applies
        when ``normalize`` is set; zero vectors stay zero either way).

    Raises:
        EmbeddingError: for empty graphs or invalid hyperparameters.
    """
    from repro.parallel.partition import plan_line_tasks

    if config is None:
        config = LineConfig()
    config.validate()
    if graph.node_count == 0:
        raise EmbeddingError(f"cannot embed empty graph (kind={graph.kind!r})")
    if graph.edge_count == 0:
        # Degenerate but legal: all-zero embedding (no behavioral signal).
        return LineEmbedding(
            kind=graph.kind,
            domains=list(graph.domains),
            vectors=np.zeros((graph.node_count, config.dimension)),
            config=config,
        )

    tasks = plan_line_tasks(graph.kind, graph.edge_count, config)
    if parallel is not None:
        backend = parallel.resolved_backend(sum(t.weight for t in tasks))
        if backend != "serial":
            # Deferred import: repro.parallel.train imports this module.
            from repro.parallel.train import train_views

            return train_views([(graph.kind, graph, config)], parallel,
                               progress)[graph.kind]

    sources, targets, sample_weights = prepare_edge_arrays(
        graph.rows, graph.cols, graph.weights, config.kernel
    )
    edge_sampler = AliasSampler(sample_weights)
    degrees = graph.degree_array()
    noise_sampler = AliasSampler(np.power(np.maximum(degrees, 1e-12), 0.75))

    started = time.perf_counter()
    vectors = np.empty((graph.node_count, config.dimension))
    for task in tasks:
        vectors[:, task.column : task.column + task.dimension] = (
            _train_single_order(
                sources, targets, edge_sampler, noise_sampler,
                graph.node_count, task.dimension, task.use_context, config,
                np.random.default_rng(task.seed), task.total_samples,
                progress, task.epoch_offset, task.epoch_total,
            )
        )
    elapsed = time.perf_counter() - started
    _record_training_metrics(
        sum(t.total_samples for t in tasks), elapsed, config.kernel
    )

    return LineEmbedding(
        kind=graph.kind,
        domains=list(graph.domains),
        vectors=_finalize_vectors(vectors, config),
        config=config,
    )
