"""Graph embedding: LINE (paper section 5) and t-SNE (section 7.3)."""

from repro.embedding.alias import AliasSampler
from repro.embedding.deepwalk import DeepWalkConfig, train_deepwalk
from repro.embedding.line import LineConfig, LineEmbedding, train_line
from repro.embedding.tsne import TsneConfig, tsne_embed

__all__ = [
    "AliasSampler",
    "DeepWalkConfig",
    "LineConfig",
    "LineEmbedding",
    "TsneConfig",
    "train_deepwalk",
    "train_line",
    "tsne_embed",
]
