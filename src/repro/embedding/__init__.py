"""Graph embedding: LINE (paper section 5) and t-SNE (section 7.3)."""

from repro.embedding.alias import AliasSampler
from repro.embedding.deepwalk import DeepWalkConfig, train_deepwalk
from repro.embedding.kernels import KERNELS, segment_scatter_add
from repro.embedding.line import LineConfig, LineEmbedding, train_line
from repro.embedding.tsne import TsneConfig, tsne_embed

__all__ = [
    "AliasSampler",
    "DeepWalkConfig",
    "KERNELS",
    "LineConfig",
    "LineEmbedding",
    "TsneConfig",
    "segment_scatter_add",
    "train_deepwalk",
    "train_line",
    "tsne_embed",
]
