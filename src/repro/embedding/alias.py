"""Vose alias method for O(1) weighted sampling.

LINE samples edges proportionally to their weights and negative vertices
from a degree^0.75 noise distribution (section 5.2); both need millions of
draws, so constant-time sampling matters. The alias table is built once in
O(n) and then any number of draws cost O(1) each (vectorized here to draw
whole batches at once).
"""

from __future__ import annotations

import numpy as np


class AliasSampler:
    """Draws indices i with probability weights[i] / sum(weights)."""

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")

        n = weights.size
        scaled = weights * (n / total)
        self._prob = np.zeros(n)
        self._alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = g
            scaled[g] = scaled[g] + scaled[s] - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for remainder in (*small, *large):
            self._prob[remainder] = 1.0
            self._alias[remainder] = remainder

    @property
    def size(self) -> int:
        return self._prob.size

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` indices as an int64 array."""
        if count < 0:
            raise ValueError("count must be non-negative")
        slots = rng.integers(0, self.size, size=count)
        coin = rng.uniform(size=count) < self._prob[slots]
        return np.where(coin, slots, self._alias[slots])
