"""Vose alias method for O(1) weighted sampling.

LINE samples edges proportionally to their weights and negative vertices
from a degree^0.75 noise distribution (section 5.2); both need millions of
draws, so constant-time sampling matters. The alias table is built once in
O(n) and then any number of draws cost O(1) each (vectorized here to draw
whole batches at once).

Construction is the classic two-stack pairing (every under-full slot is
topped up by exactly one over-full donor), but run in *vectorized rounds*:
each round matches as many small/large pairs as possible with array ops
instead of one pair per Python-bytecode iteration. Every pairing a round
performs is exactly one step of the scalar algorithm, so the resulting
table encodes the input distribution exactly; only the pairing *order*
(and hence which donor each slot aliases to) differs. A bounded number of
rounds covers real weight distributions; pathological shapes (e.g. one
giant weight and millions of tiny ones) fall back to the scalar loop for
the remainder, so worst-case cost stays O(n).

The tables themselves (``probabilities`` / ``aliases``) are exposed
read-only, and :meth:`AliasSampler.from_tables` rebuilds a sampler from
them without re-running construction — this is how the parallel training
layer ships prebuilt tables to worker processes through shared memory.
"""

from __future__ import annotations

import numpy as np

# Rounds of vectorized pairing before handing the remainder to the scalar
# loop. Each round finalizes min(#small, #large) slots, so balanced
# distributions finish in a handful of rounds; the cap only matters for
# adversarial shapes where one side collapses to a few elements.
_MAX_VECTOR_ROUNDS = 64


def _build_tables_loop(
    scaled: np.ndarray,
    prob: np.ndarray,
    alias: np.ndarray,
    small: list[int],
    large: list[int],
) -> None:
    """Scalar reference pairing: finishes construction in place.

    ``scaled`` holds current residual mass per slot (mean 1.0), ``small``
    and ``large`` the indices still classified under/over 1.0. Used both
    as the fallback tail of the vectorized builder and as the reference
    implementation the tests compare distributions against.
    """
    while small and large:
        s = small.pop()
        g = large.pop()
        prob[s] = scaled[s]
        alias[s] = g
        scaled[g] = scaled[g] + scaled[s] - 1.0
        if scaled[g] < 1.0:
            small.append(g)
        else:
            large.append(g)
    for remainder in (*small, *large):
        prob[remainder] = 1.0
        alias[remainder] = remainder


def build_alias_tables(
    weights: np.ndarray, *, vectorized: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Build (probabilities, aliases) for ``weights``.

    Args:
        weights: Non-negative 1-D weights with a positive sum.
        vectorized: Use the batched-rounds builder (default). ``False``
            forces the scalar reference loop — same distribution, kept
            for testing and as a behavioral baseline.

    Returns:
        ``(prob, alias)`` arrays of ``weights.size`` where slot ``i``
        yields ``i`` with probability ``prob[i]`` and ``alias[i]``
        otherwise.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")

    n = weights.size
    # Normalize before multiplying by n: computing the factor n/total
    # first overflows to inf for denormal totals (total < n/float_max),
    # and 0.0 * inf then poisons zero-weight slots with NaN.
    scaled = (weights / total) * n
    # Slots start self-aliased at probability 1; pairing only rewrites
    # the under-full ones, so leftovers need no cleanup pass.
    prob = np.ones(n)
    alias = np.arange(n, dtype=np.int64)

    if not vectorized:
        small = list(np.flatnonzero(scaled < 1.0))
        large = list(np.flatnonzero(scaled >= 1.0))
        _build_tables_loop(scaled, prob, alias, small, large)
        return prob, alias

    small = np.flatnonzero(scaled < 1.0)
    large = np.flatnonzero(scaled >= 1.0)
    rounds = 0
    while small.size and large.size and rounds < _MAX_VECTOR_ROUNDS:
        rounds += 1
        # Pair k distinct smalls with k distinct larges, 1:1, so every
        # residual update is conflict-free and exact.
        k = min(small.size, large.size)
        s, g = small[:k], large[:k]
        prob[s] = scaled[s]
        alias[s] = g
        scaled[g] += scaled[s] - 1.0
        refill = scaled[g] < 1.0
        small = np.concatenate([small[k:], g[refill]])
        large = np.concatenate([large[k:], g[~refill]])
    if small.size and large.size:  # pathological tail: finish scalar
        _build_tables_loop(scaled, prob, alias, list(small), list(large))
    return prob, alias


class AliasSampler:
    """Draws indices i with probability weights[i] / sum(weights)."""

    __slots__ = ("_prob", "_alias")

    def __init__(self, weights: np.ndarray) -> None:
        self._prob, self._alias = build_alias_tables(weights)

    @classmethod
    def from_tables(
        cls, probabilities: np.ndarray, aliases: np.ndarray
    ) -> "AliasSampler":
        """Wrap prebuilt tables without re-running construction.

        The arrays are used as-is (no copy), so shared-memory-backed
        views stay zero-copy in worker processes.
        """
        probabilities = np.asarray(probabilities, dtype=np.float64)
        aliases = np.asarray(aliases, dtype=np.int64)
        if probabilities.ndim != 1 or probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-D array")
        if aliases.shape != probabilities.shape:
            raise ValueError("probabilities and aliases must match in shape")
        sampler = cls.__new__(cls)
        sampler._prob = probabilities
        sampler._alias = aliases
        return sampler

    @property
    def probabilities(self) -> np.ndarray:
        """The acceptance-probability table (read-only view)."""
        return self._prob

    @property
    def aliases(self) -> np.ndarray:
        """The alias-index table (read-only view)."""
        return self._alias

    @property
    def size(self) -> int:
        return self._prob.size

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` indices as an int64 array."""
        if count < 0:
            raise ValueError("count must be non-negative")
        slots = rng.integers(0, self.size, size=count)
        # np.take beats fancy indexing on contiguous 1-D tables (~2.5x
        # for typical batch sizes); outputs and RNG stream are identical.
        coin = rng.uniform(size=count) < np.take(self._prob, slots)
        return np.where(coin, slots, np.take(self._alias, slots))
