"""DeepWalk / node2vec-style random-walk embeddings.

The paper picks LINE as "one of the best performers in graph embedding"
(section 5). This module provides the natural comparison point: truncated
random walks over the weighted similarity graph feed a skip-gram model
with negative sampling (word2vec on walk corpora — DeepWalk; with the
``return_parameter``/``inout_parameter`` biases of node2vec when they
differ from 1).

The output is interchangeable with :class:`~repro.embedding.line.LineEmbedding`,
so the detection pipeline can swap embedders for ablation
(``benchmarks/bench_ablation_embedder.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.alias import AliasSampler
from repro.embedding.line import LineConfig, LineEmbedding
from repro.errors import EmbeddingError
from repro.graphs.projection import SimilarityGraph

_SCORE_CLIP = 10.0


@dataclass(slots=True)
class DeepWalkConfig:
    """Hyperparameters for random-walk embedding training."""

    dimension: int = 32
    walks_per_node: int = 8
    walk_length: int = 20
    window: int = 4
    negatives: int = 5
    initial_lr: float = 0.025
    epochs: int = 2
    # node2vec biases; both 1.0 reduces to DeepWalk.
    return_parameter: float = 1.0
    inout_parameter: float = 1.0
    normalize: bool = True
    # Same radius convention as LineConfig.vector_scale.
    vector_scale: float = 4.0
    seed: int = 23

    def validate(self) -> None:
        if self.dimension < 2:
            raise EmbeddingError("dimension must be at least 2")
        if self.walks_per_node < 1 or self.walk_length < 2:
            raise EmbeddingError("walks must exist and have length >= 2")
        if self.window < 1:
            raise EmbeddingError("window must be at least 1")
        if self.return_parameter <= 0 or self.inout_parameter <= 0:
            raise EmbeddingError("node2vec parameters must be positive")
        if self.epochs < 1:
            raise EmbeddingError("epochs must be at least 1")


def _adjacency_lists(
    graph: SimilarityGraph,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-node neighbor arrays and matching edge weights."""
    neighbors: list[list[int]] = [[] for _ in range(graph.node_count)]
    weights: list[list[float]] = [[] for _ in range(graph.node_count)]
    for row, col, weight in zip(graph.rows, graph.cols, graph.weights):
        neighbors[int(row)].append(int(col))
        weights[int(row)].append(float(weight))
        neighbors[int(col)].append(int(row))
        weights[int(col)].append(float(weight))
    return (
        [np.array(n, dtype=np.int64) for n in neighbors],
        [np.array(w) for w in weights],
    )


def _generate_walks(
    graph: SimilarityGraph, config: DeepWalkConfig, rng: np.random.Generator
) -> list[np.ndarray]:
    """Weighted (optionally node2vec-biased) random walks."""
    neighbors, weights = _adjacency_lists(graph)
    samplers = [
        AliasSampler(w) if w.size else None for w in weights
    ]
    biased = (
        config.return_parameter != 1.0 or config.inout_parameter != 1.0
    )
    # Only consulted by _biased_step; empty when walks are unbiased.
    neighbor_sets: list[set[int]] = (
        [set(n.tolist()) for n in neighbors] if biased else []
    )

    walks: list[np.ndarray] = []
    order = rng.permutation(graph.node_count)
    for __ in range(config.walks_per_node):
        for start in order:
            start = int(start)
            if samplers[start] is None:
                continue
            walk = [start]
            while len(walk) < config.walk_length:
                current = walk[-1]
                sampler = samplers[current]
                if sampler is None:
                    break
                if not biased or len(walk) < 2:
                    position = int(sampler.sample(1, rng)[0])
                    pick = int(neighbors[current][position])
                else:
                    pick = _biased_step(
                        walk[-2],
                        current,
                        neighbors[current],
                        weights[current],
                        neighbor_sets,
                        config,
                        rng,
                    )
                walk.append(pick)
            if len(walk) >= 2:
                walks.append(np.array(walk, dtype=np.int64))
    return walks


def _biased_step(
    previous: int,
    current: int,
    candidates: np.ndarray,
    candidate_weights: np.ndarray,
    neighbor_sets: list[set[int]],
    config: DeepWalkConfig,
    rng: np.random.Generator,
) -> int:
    """One node2vec transition with return/in-out biases."""
    biases = np.empty(candidates.size)
    previous_neighbors = neighbor_sets[previous]
    for position, candidate in enumerate(candidates):
        if candidate == previous:
            biases[position] = 1.0 / config.return_parameter
        elif int(candidate) in previous_neighbors:
            biases[position] = 1.0
        else:
            biases[position] = 1.0 / config.inout_parameter
    scores = candidate_weights * biases
    total = scores.sum()
    draw = rng.uniform(0.0, total)
    return int(candidates[int(np.searchsorted(np.cumsum(scores), draw))])


def _sigmoid(scores: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(scores, -_SCORE_CLIP, _SCORE_CLIP)))


def train_deepwalk(
    graph: SimilarityGraph, config: DeepWalkConfig | None = None
) -> LineEmbedding:
    """Embed a similarity graph with random walks + skip-gram.

    Returns a :class:`LineEmbedding` (same container as LINE) so the rest
    of the pipeline is embedder-agnostic.
    """
    if config is None:
        config = DeepWalkConfig()
    config.validate()
    if graph.node_count == 0:
        raise EmbeddingError(f"cannot embed empty graph (kind={graph.kind!r})")

    line_config = LineConfig(
        dimension=config.dimension,
        order="second",
        negatives=config.negatives,
        normalize=config.normalize,
        seed=config.seed,
    )
    if graph.edge_count == 0:
        return LineEmbedding(
            kind=graph.kind,
            domains=list(graph.domains),
            vectors=np.zeros((graph.node_count, config.dimension)),
            config=line_config,
        )

    rng = np.random.default_rng(config.seed)
    walks = _generate_walks(graph, config, rng)
    if not walks:
        raise EmbeddingError("graph produced no usable walks")

    # Skip-gram pairs: (center, context) within the window.
    centers_list: list[np.ndarray] = []
    contexts_list: list[np.ndarray] = []
    for walk in walks:
        length = walk.size
        for offset in range(1, config.window + 1):
            if length <= offset:
                continue
            centers_list.append(walk[:-offset])
            contexts_list.append(walk[offset:])
            centers_list.append(walk[offset:])
            contexts_list.append(walk[:-offset])
    centers = np.concatenate(centers_list)
    contexts = np.concatenate(contexts_list)

    degrees = graph.degree_array()
    noise = AliasSampler(np.power(np.maximum(degrees, 1e-12), 0.75))

    n = graph.node_count
    dimension = config.dimension
    vertex = rng.uniform(-0.5, 0.5, size=(n, dimension)) / dimension
    context_table = np.zeros((n, dimension))

    pair_count = centers.size
    batch_size = min(4096, max(32, 4 * n))
    total_steps = pair_count * config.epochs
    done = 0
    for epoch in range(config.epochs):
        order = rng.permutation(pair_count)
        for start in range(0, pair_count, batch_size):
            batch = order[start : start + batch_size]
            u = centers[batch]
            v = contexts[batch]
            lr = config.initial_lr * max(1e-4, 1.0 - done / total_steps)

            grad_u = np.zeros((batch.size, dimension))
            pos_scores = np.einsum("ij,ij->i", vertex[u], context_table[v])
            pos_coeff = (_sigmoid(pos_scores) - 1.0) * lr
            grad_u += pos_coeff[:, None] * context_table[v]
            np.add.at(context_table, v, -pos_coeff[:, None] * vertex[u])

            for __ in range(config.negatives):
                neg = noise.sample(batch.size, rng)
                neg_scores = np.einsum(
                    "ij,ij->i", vertex[u], context_table[neg]
                )
                neg_coeff = _sigmoid(neg_scores) * lr
                grad_u += neg_coeff[:, None] * context_table[neg]
                np.add.at(
                    context_table, neg, -neg_coeff[:, None] * vertex[u]
                )

            np.add.at(vertex, u, -grad_u)
            done += batch.size

    if config.normalize:
        norms = np.linalg.norm(vertex, axis=1, keepdims=True)
        vertex = np.where(
            norms > 1e-12, vertex / norms * config.vector_scale, vertex
        )
    return LineEmbedding(
        kind=graph.kind,
        domains=list(graph.domains),
        vectors=vertex,
        config=line_config,
    )
