"""Fused minibatch SGD kernels for LINE training.

The training loop in :mod:`repro.embedding.line` decomposes into
independent single-order tasks; this module provides the two
interchangeable inner loops (*kernels*) that execute one task:

``"segment"`` (default)
    A fused pass per minibatch: all ``negatives`` noise vertices are
    drawn in one alias call, the positive and negative context rows are
    gathered together as one ``(batch, K+1)`` block, scores/sigmoids/
    coefficients are computed in-place on that block, and the gradient
    scatter-adds run as segment reductions at C speed instead of one
    ``np.add.at`` per negative. Edge orientation is pre-doubled (each
    undirected edge appears once per direction at its full weight) so
    the per-batch coin-flip pass disappears, and randomness is drawn in
    multi-batch chunks to amortize generator overhead.

``"add_at"`` (reference)
    The straightforward loop this repo started with: one
    ``np.add.at`` scatter per negative sample. Kept selectable as the
    behavioral reference the segment kernel is validated against, and
    as the fallback of record when reading the math.

Scatter strategy. ``np.add.at`` applies updates sequentially in input
order, which is exactly what a CSC sparse matrix-times-dense-block
product computes when every update is one matrix entry: with
``A[indices[i], i] = data[i]``, ``out += A @ X`` accumulates
``data[i] * X[i]`` into ``out[indices[i]]`` column by column — the same
additions in the same order, run by compiled code. The kernel uses
scipy's internal ``csc_matvecs``/``csr_matvecs`` routines for this
(they accumulate straight into the output array with no intermediate),
and falls back to ``np.add.at`` when they are unavailable; both paths
produce bit-identical tables. ``np.argsort`` + ``np.add.reduceat`` and
per-dimension ``np.bincount`` were benchmarked as alternatives and
lost: numpy's stable int64 argsort costs more than the whole fused
batch, and bincount materializes per-dimension temporaries whose
final ``out += tmp`` changes summation order.

Determinism: each kernel is a pure function of (arrays, config, rng
state), so for a fixed seed and kernel the serial, thread, and process
backends produce byte-identical embeddings. The two kernels draw
different random streams (chunked two-call sampling vs. per-negative
calls), so their outputs are *not* comparable bit-for-bit — their
scatter primitives are (see ``tests/test_embedding_kernels.py``), and
end-to-end quality is pinned by the pipeline integration test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.embedding.alias import AliasSampler
from repro.errors import EmbeddingError
from repro.obs.progress import ProgressCallback

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.embedding.line import LineConfig

__all__ = [
    "KERNELS",
    "prepare_edge_arrays",
    "segment_scatter_add",
    "train_order_add_at",
    "train_order_segment",
]

#: Selectable kernel backends (``LineConfig.kernel`` / ``--line-kernel``).
KERNELS: tuple[str, ...] = ("segment", "add_at")

_SCORE_CLIP = 10.0

# Progress reports per single-order training run ("both" makes two runs,
# so a full train_line reports up to 2x this many epochs).
_REPORTS_PER_ORDER = 10

# Batches of randomness the segment kernel draws per generator call;
# amortizes per-call sampling overhead without changing the batch-level
# update schedule. Part of the kernel's pinned random-stream layout.
_CHUNK_BATCHES = 8

_INT32_MAX = np.iinfo(np.int32).max

try:  # scipy's compiled CSC/CSR accumulation routines (private module).
    from scipy.sparse import _sparsetools

    _HAVE_SPARSETOOLS = callable(
        getattr(_sparsetools, "csc_matvecs", None)
    ) and callable(getattr(_sparsetools, "csr_matvecs", None))
except Exception:  # pragma: no cover - scipy always present in this repo
    _sparsetools = None  # type: ignore[assignment]
    _HAVE_SPARSETOOLS = False


def _index_dtype(*sizes: int) -> type[np.signedinteger]:
    """Narrowest index dtype that can address every given size."""
    return np.int32 if all(size <= _INT32_MAX for size in sizes) else np.int64


def prepare_edge_arrays(
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    kernel: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge arrays and sampling weights in the layout ``kernel`` expects.

    ``add_at`` trains on the graph's arrays as-is and flips orientation
    per sample. ``segment`` pre-doubles instead: each undirected edge
    appears once per direction, both at the edge's weight, so sampling
    the doubled table is distribution-identical to sample-then-flip
    (each direction carries half the total mass) without spending a
    random draw or a ``np.where`` pass per batch on the flip.

    Returns ``(sources, targets, sample_weights)``; build the edge
    :class:`~repro.embedding.alias.AliasSampler` over ``sample_weights``.
    Callers on the shared-memory path ship exactly these arrays so
    worker processes train on the same bytes the serial path uses.
    """
    if kernel not in KERNELS:
        raise EmbeddingError(
            f"unknown kernel {kernel!r} (expected one of {KERNELS})"
        )
    if kernel == "add_at":
        return (
            np.ascontiguousarray(rows),
            np.ascontiguousarray(cols),
            np.asarray(weights, dtype=np.float64),
        )
    node_bound = int(max(rows.max(), cols.max())) + 1 if rows.size else 0
    dtype = _index_dtype(node_bound)
    sources = np.concatenate([rows, cols]).astype(dtype, copy=False)
    targets = np.concatenate([cols, rows]).astype(dtype, copy=False)
    doubled = np.concatenate([weights, weights]).astype(np.float64, copy=False)
    return sources, targets, doubled


def segment_scatter_add(
    out: np.ndarray, indices: np.ndarray, updates: np.ndarray
) -> None:
    """``out[indices[i]] += updates[i]`` with ``np.add.at`` semantics.

    Duplicate indices accumulate sequentially in input order — the same
    additions in the same order as ``np.add.at``, so results match it
    bit for bit — but through a compiled CSC product instead of the
    ufunc inner loop, which is an order of magnitude faster for the
    row-block updates LINE performs.
    """
    count = int(indices.shape[0])
    if count == 0:
        return
    if not _HAVE_SPARSETOOLS:  # pragma: no cover - scipy always present
        np.add.at(out, indices, updates)
        return
    indices = np.ascontiguousarray(indices)
    indptr = np.arange(count + 1, dtype=indices.dtype)
    _sparsetools.csc_matvecs(
        out.shape[0],
        count,
        out.shape[1],
        indptr,
        indices,
        np.ones(count),
        np.ascontiguousarray(updates),
        out,
    )


class _ProgressMeter:
    """Shared progress/loss cadence for both kernels.

    Reports ``on_epoch`` about :data:`_REPORTS_PER_ORDER` times per
    order at fixed sample-count thresholds (the last one equals
    ``total_samples`` so the final batch always reports), passing the
    mean per-batch loss since the previous report. Instantiated only
    when a callback is present — with ``progress=None`` the kernels
    skip all loss bookkeeping.
    """

    __slots__ = (
        "_progress",
        "_thresholds",
        "_next",
        "_offset",
        "_total",
        "_loss_sum",
        "_terms",
    )

    def __init__(
        self,
        progress: ProgressCallback,
        total_samples: int,
        epoch_offset: int,
        epoch_total: int,
    ) -> None:
        self._progress = progress
        self._thresholds = [
            max(1, round(total_samples * i / _REPORTS_PER_ORDER))
            for i in range(1, _REPORTS_PER_ORDER + 1)
        ]
        self._next = 0
        self._offset = epoch_offset
        self._total = epoch_total
        self._loss_sum = 0.0
        self._terms = 0

    def update(self, drawn: int, batch_loss: float) -> None:
        """Fold one batch's loss in; report if a threshold was crossed."""
        self._loss_sum += batch_loss
        self._terms += 1
        if self._next < len(self._thresholds) and drawn >= self._thresholds[
            self._next
        ]:
            while (
                self._next < len(self._thresholds)
                and drawn >= self._thresholds[self._next]
            ):
                self._next += 1
            self._progress.on_epoch(
                self._offset + self._next,
                self._total,
                self._loss_sum / self._terms,
            )
            self._loss_sum = 0.0
            self._terms = 0


def _resolve_batch_size(config_batch: int, node_count: int) -> int:
    # Cap the minibatch relative to graph size: a batch much larger than
    # the vertex set applies hundreds of stale-gradient updates to each
    # vector at once, which overshoots and collapses small graphs.
    return min(config_batch, max(32, 4 * node_count))


def train_order_segment(
    sources: np.ndarray,
    targets: np.ndarray,
    edge_sampler: AliasSampler,
    noise_sampler: AliasSampler,
    node_count: int,
    dimension: int,
    use_context: bool,
    config: "LineConfig",
    rng: np.random.Generator,
    total_samples: int,
    progress: ProgressCallback | None = None,
    epoch_offset: int = 0,
    epoch_total: int = 0,
) -> np.ndarray:
    """Fused segment-reduction kernel (``kernel="segment"``).

    ``sources``/``targets``/``edge_sampler`` must come from
    :func:`prepare_edge_arrays` with ``kernel="segment"`` (pre-doubled
    orientation). Per batch the loop runs one gather of the positive
    and all ``K`` negative context rows, one score/sigmoid pass on the
    ``(batch, K+1)`` block, and three compiled segment reductions
    (gradient-to-source, rank-1 scatter to the context table, row
    scatter to the vertex table).
    """
    dtype = _index_dtype(node_count, edge_sampler.size)
    vertex = (rng.uniform(-0.5, 0.5, size=(node_count, dimension))) / dimension
    context = (
        np.zeros((node_count, dimension))
        if use_context
        else vertex  # first order: both sides share the same table
    )

    batch_size = _resolve_batch_size(config.batch_size, node_count)
    negatives = config.negatives
    cols = negatives + 1
    meter = (
        _ProgressMeter(progress, total_samples, epoch_offset, epoch_total)
        if progress is not None
        else None
    )

    # Per-run constants and reusable buffers (sliced for the tail batch).
    indptr_ctx = np.arange(batch_size + 1, dtype=dtype) * cols
    indptr_row = np.arange(batch_size + 1, dtype=dtype)
    entry_seq = np.arange(batch_size * cols, dtype=dtype)
    ones = np.ones(batch_size)
    ctx_idx_buf = np.empty((batch_size, cols), dtype=dtype)
    scores_buf = np.empty((batch_size, cols))
    grad_buf = np.empty((batch_size, dimension))
    edge_prob = edge_sampler.probabilities
    edge_alias = edge_sampler.aliases.astype(dtype, copy=False)
    noise_prob = noise_sampler.probabilities
    noise_alias = noise_sampler.aliases.astype(dtype, copy=False)
    edge_slots = edge_sampler.size
    noise_slots = noise_sampler.size
    inv_total = 1.0 / total_samples

    drawn = 0
    while drawn < total_samples:
        # One chunk of randomness covers several batches: two generator
        # calls instead of 2 + negatives per batch. The batch schedule
        # (and therefore the update sequence) is unchanged.
        span = min(_CHUNK_BATCHES * batch_size, total_samples - drawn)
        slots = rng.integers(0, edge_slots, size=span, dtype=dtype)
        accept = rng.uniform(size=span) < np.take(edge_prob, slots)
        edge_ids = np.where(accept, slots, np.take(edge_alias, slots))
        slots = rng.integers(0, noise_slots, size=span * negatives, dtype=dtype)
        accept = rng.uniform(size=span * negatives) < np.take(noise_prob, slots)
        noise_ids = np.where(accept, slots, np.take(noise_alias, slots))

        offset = 0
        while offset < span:
            batch = min(batch_size, span - offset)
            lr = config.initial_lr * max(1e-4, 1.0 - drawn * inv_total)
            u = np.take(sources, edge_ids[offset : offset + batch])
            ctx_idx = ctx_idx_buf[:batch]
            ctx_idx[:, 0] = np.take(targets, edge_ids[offset : offset + batch])
            ctx_idx[:, 1:] = noise_ids[
                offset * negatives : (offset + batch) * negatives
            ].reshape(batch, negatives)
            flat_idx = ctx_idx.ravel()

            # Gather once: source rows plus positive + negative context
            # rows as one (batch, K+1, dim) block.
            vu = np.take(vertex, u, axis=0)
            ctx_flat = np.take(context, flat_idx, axis=0)
            ctx = ctx_flat.reshape(batch, cols, dimension)
            scores = scores_buf[:batch]
            np.einsum("bd,bkd->bk", vu, ctx, out=scores)
            np.clip(scores, -_SCORE_CLIP, _SCORE_CLIP, out=scores)
            if meter is not None:
                # -log sigma(x) = log1p(e^-x); column 0 is the positive
                # pair (label 1), the rest negatives (label 0). Computed
                # from the clipped scores before they are destroyed.
                signed = scores.copy()
                signed[:, 0] = -signed[:, 0]
                batch_loss = float(
                    np.log1p(np.exp(signed)).mean(axis=0).sum()
                )
            # In-place coefficient chain: scores becomes
            # (label - sigma(score)) * lr with label folded in, so the
            # scatters below add directly (no negation temporaries).
            np.negative(scores, out=scores)
            np.exp(scores, out=scores)
            scores += 1.0
            np.divide(-lr, scores, out=scores)
            coeff = scores
            coeff[:, 0] += lr

            # grad[b] = sum_k coeff[b,k] * ctx[b,k]: a block-diagonal
            # CSR product accumulating straight into the buffer.
            grad = grad_buf[:batch]
            if _HAVE_SPARSETOOLS:
                grad[...] = 0.0
                _sparsetools.csr_matvecs(
                    batch,
                    batch * cols,
                    dimension,
                    indptr_ctx[: batch + 1],
                    entry_seq[: batch * cols],
                    coeff.ravel(),
                    ctx_flat,
                    grad,
                )
                # Rank-1 scatter: context[flat_idx[i]] +=
                # coeff.flat[i] * vu[i // cols], as a CSC product with
                # K+1 entries per column — never materializes the
                # (batch*(K+1), dim) outer product.
                table = context if use_context else vertex
                _sparsetools.csc_matvecs(
                    node_count,
                    batch,
                    dimension,
                    indptr_ctx[: batch + 1],
                    flat_idx,
                    coeff.ravel(),
                    vu,
                    table,
                )
                _sparsetools.csc_matvecs(
                    node_count,
                    batch,
                    dimension,
                    indptr_row[: batch + 1],
                    u,
                    ones[:batch],
                    grad,
                    vertex,
                )
            else:  # pragma: no cover - exercised via direct tests only
                grad[...] = 0.0
                for k in range(cols):
                    grad += coeff[:, k, None] * ctx[:, k, :]
                table = context if use_context else vertex
                np.add.at(
                    table,
                    flat_idx,
                    (coeff[:, :, None] * vu[:, None, :]).reshape(
                        batch * cols, dimension
                    ),
                )
                np.add.at(vertex, u, grad)

            offset += batch
            drawn += batch
            if meter is not None:
                meter.update(drawn, batch_loss)
    return vertex


def train_order_add_at(
    sources: np.ndarray,
    targets: np.ndarray,
    edge_sampler: AliasSampler,
    noise_sampler: AliasSampler,
    node_count: int,
    dimension: int,
    use_context: bool,
    config: "LineConfig",
    rng: np.random.Generator,
    total_samples: int,
    progress: ProgressCallback | None = None,
    epoch_offset: int = 0,
    epoch_total: int = 0,
) -> np.ndarray:
    """Reference kernel (``kernel="add_at"``): per-negative ``np.add.at``.

    The original training loop, kept selectable for comparison runs and
    as the readable statement of the update rule. Context updates apply
    eagerly between negatives (each negative's gather sees the previous
    scatter), where the segment kernel computes a whole batch from its
    start-of-batch snapshot — one of the documented ways the kernels'
    random streams and summation orders differ.
    """
    vertex = (rng.uniform(-0.5, 0.5, size=(node_count, dimension))) / dimension
    context = (
        np.zeros((node_count, dimension))
        if use_context
        else vertex  # first order: both sides share the same table
    )

    drawn = 0
    batch_size = _resolve_batch_size(config.batch_size, node_count)
    negatives = config.negatives
    meter = (
        _ProgressMeter(progress, total_samples, epoch_offset, epoch_total)
        if progress is not None
        else None
    )
    batch_loss = 0.0
    while drawn < total_samples:
        batch = min(batch_size, total_samples - drawn)
        lr = config.initial_lr * max(1e-4, 1.0 - drawn / total_samples)
        edge_ids = edge_sampler.sample(batch, rng)
        # Random orientation: undirected edges act as two directed ones.
        flip = rng.uniform(size=batch) < 0.5
        u = np.where(flip, targets[edge_ids], sources[edge_ids])
        v = np.where(flip, sources[edge_ids], targets[edge_ids])

        grad_u = np.zeros((batch, dimension))

        # Positive pairs: label 1. One sigmoid serves both the loss and
        # the gradient coefficient.
        pos_scores = np.einsum("ij,ij->i", vertex[u], context[v])
        pos_sigmoid = _sigmoid(pos_scores)
        if meter is not None:
            batch_loss = float(np.mean(-np.log(pos_sigmoid)))
        pos_coeff = (pos_sigmoid - 1.0) * lr
        grad_u += pos_coeff[:, None] * context[v]
        delta_v = pos_coeff[:, None] * vertex[u]

        if use_context:
            np.add.at(context, v, -delta_v)
        else:
            np.add.at(vertex, v, -delta_v)

        # Negative pairs: label 0, drawn from the noise distribution.
        # sigma(-x) = 1 - sigma(x), so the one sigmoid serves here too.
        for __ in range(negatives):
            neg = noise_sampler.sample(batch, rng)
            neg_scores = np.einsum("ij,ij->i", vertex[u], context[neg])
            neg_sigmoid = _sigmoid(neg_scores)
            if meter is not None:
                batch_loss += float(np.mean(-np.log1p(-neg_sigmoid)))
            neg_coeff = neg_sigmoid * lr
            grad_u += neg_coeff[:, None] * context[neg]
            delta_neg = neg_coeff[:, None] * vertex[u]
            if use_context:
                np.add.at(context, neg, -delta_neg)
            else:
                np.add.at(vertex, neg, -delta_neg)

        np.add.at(vertex, u, -grad_u)
        drawn += batch
        if meter is not None:
            meter.update(drawn, batch_loss)
    return vertex


def _sigmoid(scores: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(scores, -_SCORE_CLIP, _SCORE_CLIP)))


_KERNEL_FUNCS = {
    "segment": train_order_segment,
    "add_at": train_order_add_at,
}


def train_single_order(
    sources: np.ndarray,
    targets: np.ndarray,
    edge_sampler: AliasSampler,
    noise_sampler: AliasSampler,
    node_count: int,
    dimension: int,
    use_context: bool,
    config: "LineConfig",
    rng: np.random.Generator,
    total_samples: int,
    progress: ProgressCallback | None = None,
    epoch_offset: int = 0,
    epoch_total: int = 0,
) -> np.ndarray:
    """Dispatch one single-order training run to ``config.kernel``.

    The edge arrays and sampler must have been prepared for that kernel
    (:func:`prepare_edge_arrays`); both the serial path and the
    shared-memory worker path satisfy this by construction, which is
    what keeps serial/thread/process output byte-identical per kernel.
    """
    try:
        kernel = _KERNEL_FUNCS[config.kernel]
    except KeyError:
        raise EmbeddingError(
            f"unknown kernel {config.kernel!r} (expected one of {KERNELS})"
        ) from None
    return kernel(
        sources,
        targets,
        edge_sampler,
        noise_sampler,
        node_count,
        dimension,
        use_context,
        config,
        rng,
        total_samples,
        progress,
        epoch_offset,
        epoch_total,
    )
