"""Exact t-SNE (van der Maaten & Hinton, JMLR 2008).

Used for the paper's Figure 5: project domain embeddings of a handful of
clusters to 2-D and check that associated domains land close together.
Exact (O(n^2)) gradients are plenty for the few hundred points that
figure uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmbeddingError

_EPS = 1e-12


@dataclass(slots=True)
class TsneConfig:
    """t-SNE hyperparameters (defaults follow the original paper)."""

    perplexity: float = 30.0
    iterations: int = 750
    learning_rate: float = 200.0
    early_exaggeration: float = 12.0
    exaggeration_iterations: int = 250
    initial_momentum: float = 0.5
    final_momentum: float = 0.8
    momentum_switch_iteration: int = 250
    seed: int = 42

    def validate(self, sample_count: int) -> None:
        if self.perplexity <= 1:
            raise EmbeddingError("perplexity must exceed 1")
        if sample_count <= 3 * self.perplexity:
            raise EmbeddingError(
                f"perplexity {self.perplexity} too large for "
                f"{sample_count} samples (need > 3*perplexity samples)"
            )
        if self.iterations < 50:
            raise EmbeddingError("iterations must be at least 50")


def _pairwise_squared_distances(data: np.ndarray) -> np.ndarray:
    norms = np.sum(data**2, axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * (data @ data.T)
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(
    distances: np.ndarray, perplexity: float
) -> np.ndarray:
    """Row-stochastic P(j|i) matching ``perplexity`` via binary search."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        low, high = 1e-20, 1e20
        beta = 1.0  # precision = 1 / (2 sigma^2)
        for __ in range(64):
            exponent = np.exp(-row * beta)
            total = exponent.sum()
            if total <= _EPS:
                entropy = 0.0
                p_row = np.zeros_like(row)
            else:
                p_row = exponent / total
                entropy = -np.sum(p_row * np.log(np.maximum(p_row, _EPS)))
            error = entropy - target_entropy
            if abs(error) < 1e-5:
                break
            if error > 0:
                low = beta
                beta = beta * 2 if high >= 1e20 else (beta + high) / 2
            else:
                high = beta
                beta = beta / 2 if low <= 1e-20 else (beta + low) / 2
        p_full = np.insert(p_row, i, 0.0)
        probabilities[i] = p_full
    return probabilities


def _pca_initialization(data: np.ndarray, seed: int) -> np.ndarray:
    centered = data - data.mean(axis=0)
    try:
        __, __, v = np.linalg.svd(centered, full_matrices=False)
        initial = centered @ v[:2].T
    except np.linalg.LinAlgError:
        initial = np.random.default_rng(seed).normal(
            scale=1e-4, size=(data.shape[0], 2)
        )
    scale = np.abs(initial).max()
    if scale > 0:
        initial = initial / scale * 1e-2
    return initial


def tsne_embed(
    data: np.ndarray, config: TsneConfig | None = None
) -> np.ndarray:
    """Project ``data`` (n x d) to a 2-D layout.

    Returns an (n x 2) array. Deterministic for a fixed config seed.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise EmbeddingError("t-SNE input must be a 2-D array")
    if config is None:
        config = TsneConfig()
    config.validate(data.shape[0])

    distances = _pairwise_squared_distances(data)
    conditional = _conditional_probabilities(distances, config.perplexity)
    joint = (conditional + conditional.T) / (2.0 * data.shape[0])
    joint = np.maximum(joint, _EPS)

    layout = _pca_initialization(data, config.seed)
    velocity = np.zeros_like(layout)
    gains = np.ones_like(layout)

    for iteration in range(config.iterations):
        exaggeration = (
            config.early_exaggeration
            if iteration < config.exaggeration_iterations
            else 1.0
        )
        momentum = (
            config.initial_momentum
            if iteration < config.momentum_switch_iteration
            else config.final_momentum
        )

        low_d_sq = _pairwise_squared_distances(layout)
        student = 1.0 / (1.0 + low_d_sq)
        np.fill_diagonal(student, 0.0)
        q_total = student.sum()
        q = np.maximum(student / max(q_total, _EPS), _EPS)

        coefficient = (exaggeration * joint - q) * student
        gradient = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ layout

        same_sign = np.sign(gradient) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - config.learning_rate * gains * gradient
        layout = layout + velocity
        layout = layout - layout.mean(axis=0)
    return layout
